(* Cluster health from the gauge time-series: run the churn experiment
   instrumented, check that what the sampler saw agrees with what the
   supervisor logged, and render a `top`-style dashboard of a finished
   run.  Everything here is a consumer of {!Trace.Timeseries}; the
   instrumentation itself lives with the components. *)

open Sim
module Sup = Perseas.Supervisor
module Ts = Trace.Timeseries

let default_interval = Time.us 100.0

let instrumented_churn ?(params = Churn.default_params) ?(interval = default_interval) ?tail () =
  let tel = Ts.create () in
  let sink = Option.map Trace.Tail.sink tail in
  let r = Churn.run ~params ~telemetry:(tel, interval) ?sink () in
  (r, tel)

(* ------------------------------------------------------------------ *)
(* Agreement between the sampled series and the supervisor's log       *)

type agreement = {
  windows_total : int;
  windows_seen : int;  (* windows some degraded signal overlapped *)
  degraded_signals : int;  (* degraded samples + degraded_us growth intervals *)
  matched_signals : int;  (* of those, overlapping some (slackened) window *)
}

(* [start, restored) spans where the factor sat below target, replayed
   from the event log exactly as {!Churn.run} derives its windows; a
   window still open at the end of the log has no restoration time. *)
let degraded_spans ~target events =
  let live = ref target in
  let open_at = ref None in
  let acc = ref [] in
  List.iter
    (fun (e : Sup.event) ->
      match e with
      | Sup.Mirror_lost { at; _ } ->
          if !live = target then open_at := Some at;
          live := max 0 (!live - 1)
      | Sup.Recruited { at; _ } ->
          live := min target (!live + 1);
          if !live = target then
            Option.iter
              (fun t0 ->
                acc := (t0, Some at) :: !acc;
                open_at := None)
              !open_at
      | Sup.Attempt_failed _ | Sup.Gave_up _ -> ())
    events;
  Option.iter (fun t0 -> acc := (t0, None) :: !acc) !open_at;
  List.rev !acc

let is_degraded (s : Ts.sample) =
  match List.assoc_opt "sup.degraded" s.values with Some v -> v > 0 | None -> false

let degraded_us (s : Ts.sample) =
  match List.assoc_opt "perseas.degraded_us" s.values with Some v -> v | None -> 0

(* Each degraded signal in the series, as a [t0, t1] interval of sample
   labels.  Two kinds: a sample that saw [sup.degraded] set (a window
   open at pump time), and a consecutive pair across which the
   cumulative [perseas.degraded_us] gauge grew — a window can open and
   close entirely between two pumps (the resync copy advances the
   clock inside one supervisor tick), invisible to the instantaneous
   gauge but not to the cumulative one. *)
let degraded_signals samples =
  let instants =
    List.filter_map (fun (s : Ts.sample) -> if is_degraded s then Some (s.at, s.at) else None)
      samples
  in
  let rec deltas acc = function
    | (a : Ts.sample) :: (b :: _ as rest) ->
        deltas (if degraded_us b > degraded_us a then (a.at, b.at) :: acc else acc) rest
    | _ -> List.rev acc
  in
  instants @ deltas [] samples

(* The sampler labels with grid time but reads state at pump time, and
   a pump can lag a whole resync copy behind the grid; [slack] absorbs
   that.  It only needs to be small against the mean time between
   failures, not against the window length. *)
let agreement ?(slack = Time.ms 5.0) ~target ~samples events =
  let spans = degraded_spans ~target events in
  let overlaps (t0, t1) (l, r) =
    t1 >= l - slack && match r with Some r -> t0 <= r + slack | None -> true
  in
  let signals = degraded_signals samples in
  let matched = List.filter (fun i -> List.exists (overlaps i) spans) signals in
  let seen = List.filter (fun span -> List.exists (fun i -> overlaps i span) signals) spans in
  {
    windows_total = List.length spans;
    windows_seen = List.length seen;
    degraded_signals = List.length signals;
    matched_signals = List.length matched;
  }

let check_agreement a =
  if a.degraded_signals > 0 && a.matched_signals < a.degraded_signals then
    failwith
      (Printf.sprintf
         "Telemetry: %d of %d degraded signals fall outside every supervisor degraded window"
         (a.degraded_signals - a.matched_signals)
         a.degraded_signals);
  if a.windows_total > 0 && a.windows_seen = 0 then
    failwith "Telemetry: supervisor logged degraded windows but the series shows none"

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)

let csv ~tel =
  let names = Ts.names tel in
  (Trace.Export.timeseries_csv_header names, Trace.Export.timeseries_csv_rows ~names (Ts.samples tel))

(* ------------------------------------------------------------------ *)
(* The dashboard                                                       *)

(* Eight-level block sparkline of [name] over the run, [width] columns,
   each column the max over its bucket of samples (so narrow spikes
   survive the squeeze). *)
let sparkline ?(width = 60) tel name =
  let samples = Ts.samples tel in
  let n = List.length samples in
  if n = 0 then ""
  else begin
    let values = Array.of_list (List.map (fun (s : Ts.sample) ->
        match List.assoc_opt name s.values with Some v -> v | None -> 0) samples) in
    let width = min width n in
    let buckets = Array.make width 0 in
    Array.iteri (fun i v ->
        let b = i * width / n in
        if v > buckets.(b) then buckets.(b) <- v) values;
    let top = Array.fold_left max 1 buckets in
    let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                    "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |] in
    let buf = Buffer.create (width * 3) in
    Array.iter (fun v -> Buffer.add_string buf blocks.(v * 7 / top)) buckets;
    Buffer.contents buf
  end

let top ?tail (r : Churn.report) tel =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let v name = Ts.value tel name in
  let stats = r.Churn.stats in
  line "PERSEAS cluster health — virtual time %.1f ms, epoch %d, %d samples"
    (Time.to_ms r.run_time) (v "perseas.epoch") (Ts.sample_count tel);
  line "";
  line "  replication   %d live / target restored: %b   spares %d   %d degraded windows, %.0f us total (%.2f%% of run)"
    (v "perseas.live_mirrors") r.factor_restored (v "sup.spares") (List.length r.windows)
    (Time.to_us r.degraded_time)
    (100.0 *. Time.to_s r.degraded_time /. Time.to_s r.run_time);
  line "  workload      %d committed, %d aborts (%d conflicts, %d other), %.0f tps under churn   undo hwm %d B   dirty ranges %d"
    stats.Perseas.committed stats.Perseas.aborts stats.Perseas.conflicts
    (stats.Perseas.aborts - stats.Perseas.conflicts)
    r.tps stats.Perseas.undo_hwm_bytes (v "perseas.dirty_log");
  if stats.Perseas.checkpoints_taken > 0 || v "perseas.checkpoints_taken" > 0 then
    line "  checkpoints   %d published, %s B shipped   log truncated %s B   undo tail %d B"
      stats.Perseas.checkpoints_taken
      (Table.fmt_int stats.Perseas.checkpoint_bytes)
      (Table.fmt_int stats.Perseas.log_truncated_bytes)
      (v "perseas.undo_tail");
  line "  healing       %d mirrors lost   %d incr + %d full resyncs, %s B moved (full copy: %s B)"
    stats.Perseas.mirrors_lost r.incremental_resyncs r.full_resyncs
    (Table.fmt_int (r.incremental_bytes + r.full_resync_bytes))
    (Table.fmt_int r.full_copy_bytes);
  line "  network       %s pkts (%s B), %s rpcs   burst hwm %d B / %d pkts"
    (Table.fmt_int (v "nic.pkts"))
    (Table.fmt_int (v "nic.bytes"))
    (Table.fmt_int (v "netram.rpc_ops"))
    (Ts.hwm tel "nic.burst_bytes") (Ts.hwm tel "nic.burst_pkts");
  (* Live per-phase tail, when a Trace.Tail rode along on the span
     stream: where the p99 microseconds of a transaction go. *)
  Option.iter
    (fun tail ->
      match Trace.Tail.phase_p99s tail with
      | [] -> ()
      | ps ->
          line "  phase p99     %s   (%d txn-phase samples)"
            (String.concat "   "
               (List.map (fun (n, p) -> Printf.sprintf "%s %.1fus" n p) ps))
            (List.fold_left
               (fun acc (_, h) -> acc + Sim.Stats.Histogram.count h)
               0 (Trace.Tail.phases tail)))
    tail;
  (* Per-server liveness, from the netram.<label>.alive gauges. *)
  let servers =
    List.filter_map
      (fun n ->
        if String.length n > 13 && String.sub n 0 7 = "netram." && Filename.check_suffix n ".alive"
        then Some (String.sub n 7 (String.length n - 13))
        else None)
      (Ts.names tel)
  in
  if servers <> [] then
    line "  servers       %s"
      (String.concat "   "
         (List.map
            (fun label ->
              let state =
                if v (Printf.sprintf "netram.%s.paused" label) > 0 then "PAUSED"
                else if v (Printf.sprintf "netram.%s.alive" label) > 0 then "up"
                else "DOWN"
              in
              Printf.sprintf "%s:%s" label state)
            servers));
  line "";
  List.iter
    (fun name ->
      if List.mem name (Ts.names tel) then
        line "  %-22s %s  (peak %s)" name (sparkline tel name) (Table.fmt_int (Ts.hwm tel name)))
    [
      "rate.tps"; "rate.bytes_per_s"; "perseas.live_mirrors"; "sup.spares"; "perseas.degraded_us";
      "perseas.undo_tail"; "perseas.checkpoint_bytes";
    ];
  Buffer.contents b
