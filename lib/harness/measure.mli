open Sim

(** Virtual-time measurement protocol: warm up, then measure a number
    of transactions against the engine's clock.  Results are exact and
    deterministic — the "clock" only moves when a cost model charges
    it. *)

type result = {
  tps : float;  (** Transactions per (virtual) second. *)
  mean_us : float;  (** Mean transaction latency. *)
  p50_us : float;
  p99_us : float;
  elapsed : Time.t;  (** Total virtual time of the measured phase. *)
  iters : int;
  phases : Trace.phase_stat list;
      (** Per-phase latency breakdown of the measured window, from the
          spans [sink] collected — empty without a [sink]. *)
}

val run :
  clock:Clock.t ->
  ?sink:Trace.Sink.t ->
  ?tail:Trace.Tail.t ->
  ?finish:(unit -> unit) ->
  warmup:int ->
  iters:int ->
  (int -> unit) ->
  result
(** [run ~clock ~warmup ~iters tx] executes [tx i] for [warmup] rounds
    unmeasured, then [iters] measured rounds (with per-transaction
    latencies), calling [finish] before reading the final clock so
    buffered work (group commit) is accounted.  Pass a memory [sink]
    (already attached to the engine, e.g. via {!Perseas.set_sink}) to
    get the per-phase breakdown of the measured window in [phases];
    warmup spans are excluded by cursor, not by clearing the sink.
    Pass [tail] to feed every measured transaction — latency, its span
    window, its packet events — into a {!Trace.Tail} for per-phase
    percentiles and worst-K exemplar retention (window scoping needs
    the same memory [sink]; without one only latencies are fed). *)

val pp_result : Format.formatter -> result -> unit
