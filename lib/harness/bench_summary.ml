(* The machine-readable benchmark matrix behind the CI perf gate:
   virtual tps / mean / p99 for every engine and workload (PERSEAS at
   1-3 mirrors), written to BENCH_summary.json at the repo root, and a
   comparator that measures the matrix fresh and judges it against a
   committed baseline.  All numbers are virtual-time and deterministic,
   so the gate's tolerance only has to absorb intended model drift, not
   machine noise. *)

module T = Testbed

type entry = {
  engine : string;
  workload : string;
  mirrors : int;  (* 0 for single-node baselines *)
  tps : float;
  mean_us : float;
  p99_us : float;
}

let workload_label = function `Debit_credit -> "debit-credit" | `Order_entry -> "order-entry"
let workloads = [ `Debit_credit; `Order_entry ]

(* Fresh instance per cell — engines accumulate state. *)
let engines =
  [
    ("PERSEAS", 1, fun () -> T.replicated_instance ~mirrors:1 ());
    ("PERSEAS", 2, fun () -> T.replicated_instance ~mirrors:2 ());
    ("PERSEAS", 3, fun () -> T.replicated_instance ~mirrors:3 ());
    ("RVM", 0, fun () -> T.rvm_instance ());
    ("RVM-Rio", 0, fun () -> T.rvm_instance ~rio:true ());
    ("Vista", 0, fun () -> T.vista_instance ());
    ("RemoteWAL", 0, fun () -> T.remote_wal_instance ());
  ]

let measure inst workload =
  let (module I : T.INSTANCE) = inst in
  let iters = if T.label inst = "RVM" then 2_000 else 10_000 in
  let warmup = iters / 10 in
  match workload with
  | `Debit_credit ->
      let module W = Workloads.Debit_credit.Make (I.E) in
      let rng = Sim.Rng.create 7 in
      let db = W.setup I.engine ~params:Workloads.Debit_credit.default_params in
      let r =
        Measure.run ~clock:I.clock ~finish:I.finish ~warmup ~iters (fun _ -> W.transaction db rng)
      in
      assert (W.consistent db);
      r
  | `Order_entry ->
      let module W = Workloads.Order_entry.Make (I.E) in
      let rng = Sim.Rng.create 11 in
      let db = W.setup I.engine ~params:Workloads.Order_entry.default_params in
      let r =
        Measure.run ~clock:I.clock ~finish:I.finish ~warmup ~iters (fun _ -> W.transaction db rng)
      in
      assert (W.consistent db);
      r

let collect () =
  List.concat_map
    (fun (engine, mirrors, make) ->
      List.map
        (fun w ->
          let r = measure (make ()) w in
          {
            engine;
            workload = workload_label w;
            mirrors;
            tps = r.Measure.tps;
            mean_us = r.Measure.mean_us;
            p99_us = r.Measure.p99_us;
          })
        workloads)
    engines

let to_json entries =
  let cell e =
    Printf.sprintf
      "    { \"engine\": %S, \"workload\": %S, \"mirrors\": %d, \"tps\": %.1f, \"mean_us\": \
       %.4f, \"p99_us\": %.4f }"
      e.engine e.workload e.mirrors e.tps e.mean_us e.p99_us
  in
  "{\n  \"schema\": \"perseas-bench-summary/1\",\n  \"entries\": [\n"
  ^ String.concat ",\n" (List.map cell entries)
  ^ "\n  ]\n}\n"

let of_json j =
  let entry e =
    let num k = Json.to_float (Json.member_exn k e) in
    {
      engine = Json.to_string (Json.member_exn "engine" e);
      workload = Json.to_string (Json.member_exn "workload" e);
      mirrors = Json.to_int (Json.member_exn "mirrors" e);
      tps = num "tps";
      mean_us = num "mean_us";
      p99_us = num "p99_us";
    }
  in
  List.map entry (Json.to_list (Json.member_exn "entries" j))

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_json (Json.parse_exn s)

let write ~path entries =
  let oc = open_out path in
  output_string oc (to_json entries);
  close_out oc

(* ------------------------------------------------------------------ *)
(* The gate                                                            *)

type verdict = {
  entry : entry;
  baseline_tps : float option;
  delta_pct : float option;  (* negative = regression *)
  gated : bool;  (* part of the hard gate (debit-credit tps) *)
  failed : bool;
}

let compare_to_baseline ?(tolerance_pct = 10.0) ~baseline current =
  let find e =
    List.find_opt
      (fun b -> b.engine = e.engine && b.workload = e.workload && b.mirrors = e.mirrors)
      baseline
  in
  let verdicts =
    List.map
      (fun e ->
        let gated = e.workload = "debit-credit" in
        match find e with
        | None -> { entry = e; baseline_tps = None; delta_pct = None; gated; failed = false }
        | Some b ->
            let delta = 100.0 *. (e.tps -. b.tps) /. b.tps in
            {
              entry = e;
              baseline_tps = Some b.tps;
              delta_pct = Some delta;
              gated;
              failed = gated && delta < -.tolerance_pct;
            })
      current
  in
  (* Baseline coverage dropped from the matrix is a gate failure too —
     a silently vanished cell must not read as a pass. *)
  let missing =
    List.filter
      (fun b ->
        b.workload = "debit-credit"
        && not
             (List.exists
                (fun e ->
                  e.engine = b.engine && e.workload = b.workload && e.mirrors = b.mirrors)
                current))
      baseline
  in
  let verdicts =
    verdicts
    @ List.map
        (fun b ->
          {
            entry = b;
            baseline_tps = Some b.tps;
            delta_pct = None;
            gated = true;
            failed = true;
          })
        missing
  in
  (verdicts, List.exists (fun v -> v.failed) verdicts)

let print_verdicts ~tolerance_pct verdicts =
  let header = [ "engine"; "workload"; "mirrors"; "baseline tps"; "tps"; "delta"; "gate" ] in
  let rows =
    List.map
      (fun v ->
        [
          v.entry.engine;
          v.entry.workload;
          (if v.entry.mirrors = 0 then "-" else string_of_int v.entry.mirrors);
          (match v.baseline_tps with Some t -> Table.fmt_tps t | None -> "(new)");
          (match v.delta_pct with None when v.baseline_tps <> None -> "MISSING"
          | _ -> Table.fmt_tps v.entry.tps);
          (match v.delta_pct with Some d -> Printf.sprintf "%+.1f%%" d | None -> "-");
          (if v.failed then "FAIL" else if v.gated then "ok" else "info");
        ])
      verdicts
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Bench gate: debit-credit tps within %.0f%% of baseline (other cells informational)"
         tolerance_pct)
    ~header rows
