(* The machine-readable benchmark matrix behind the CI perf gate:
   virtual tps / mean / p99 for every engine and workload (PERSEAS at
   1-3 mirrors), written to BENCH_summary.json at the repo root, and a
   comparator that measures the matrix fresh and judges it against a
   committed baseline.  All numbers are virtual-time and deterministic,
   so the gate's tolerance only has to absorb intended model drift, not
   machine noise. *)

module T = Testbed

type entry = {
  engine : string;
  workload : string;
  mirrors : int;  (* 0 for single-node baselines *)
  tps : float;
  mean_us : float;
  p99_us : float;
  pkts_per_txn : float option;  (* PERSEAS cells only: NIC packets / txn *)
  phase_p99 : (string * float) list;
      (* PERSEAS cells only: p99 virtual us per txn phase from the live
         Trace.Tail histograms; [] for baselines and older schemas. *)
}

let workload_label = function `Debit_credit -> "debit-credit" | `Order_entry -> "order-entry"
let workloads = [ `Debit_credit; `Order_entry ]

(* PERSEAS cells are built from the bed rather than the packed
   instance so the gate can also read the cluster NIC's packet
   counters. *)
let perseas_cell mirrors () =
  let bed = T.replicated_bed ~mirrors () in
  let inst : T.instance =
    (module struct
      module E = Perseas.Engine

      let engine = bed.T.perseas
      let clock = bed.T.clock
      let label = Printf.sprintf "PERSEAS-%dm" mirrors
      let finish () = ()
    end)
  in
  (* The tail attaches only after setup (inside [measure]'s reset), so
     the per-phase histograms cover the warmup + measured window, not
     database creation. *)
  let attach_tail () =
    let tail = Trace.Tail.create () in
    Perseas.set_sink bed.T.perseas (Trace.Tail.sink tail);
    tail
  in
  (inst, Some (Cluster.nic bed.T.cluster), Some attach_tail)

(* Fresh instance per cell — engines accumulate state. *)
let engines =
  [
    ("PERSEAS", 1, perseas_cell 1);
    ("PERSEAS", 2, perseas_cell 2);
    ("PERSEAS", 3, perseas_cell 3);
    ("RVM", 0, fun () -> (T.rvm_instance (), None, None));
    ("RVM-Rio", 0, fun () -> (T.rvm_instance ~rio:true (), None, None));
    ("Vista", 0, fun () -> (T.vista_instance (), None, None));
    ("RemoteWAL", 0, fun () -> (T.remote_wal_instance (), None, None));
  ]

let measure (inst, nic, attach_tail) workload =
  let (module I : T.INSTANCE) = inst in
  let iters = if T.label inst = "RVM" then 2_000 else 10_000 in
  let warmup = iters / 10 in
  let tail = ref None in
  (* Counters are reset after setup, so packets/txn covers exactly the
     warmup + measured transactions (the tail histograms likewise). *)
  let reset () =
    Option.iter Sci.Nic.reset_counters nic;
    tail := Option.map (fun f -> f ()) attach_tail
  in
  let r =
    match workload with
    | `Debit_credit ->
        let module W = Workloads.Debit_credit.Make (I.E) in
        let rng = Sim.Rng.create 7 in
        let db = W.setup I.engine ~params:Workloads.Debit_credit.default_params in
        reset ();
        let r =
          Measure.run ~clock:I.clock ~finish:I.finish ~warmup ~iters (fun _ ->
              W.transaction db rng)
        in
        assert (W.consistent db);
        r
    | `Order_entry ->
        let module W = Workloads.Order_entry.Make (I.E) in
        let rng = Sim.Rng.create 11 in
        let db = W.setup I.engine ~params:Workloads.Order_entry.default_params in
        reset ();
        let r =
          Measure.run ~clock:I.clock ~finish:I.finish ~warmup ~iters (fun _ ->
              W.transaction db rng)
        in
        assert (W.consistent db);
        r
  in
  let pkts =
    Option.map
      (fun n ->
        let c = Sci.Nic.counters n in
        float_of_int (c.Sci.Nic.packets64 + c.Sci.Nic.packets16) /. float_of_int (warmup + iters))
      nic
  in
  let phase_p99 = match !tail with Some t -> Trace.Tail.phase_p99s t | None -> [] in
  (r, pkts, phase_p99)

(* Concurrency cell: debit-credit under 8 interleaved clients at one
   mirror, batching two client rounds per group-commit flush (the R9
   protocol).  Only debit-credit is meaningful here, so the cell sits
   outside the engine x workload matrix above; its packet gate is what
   keeps the group-commit schedule honest at load — pkts/txn creeping
   up under concurrency fails CI even when the eager cells stay flat. *)
let concurrency_clients = 8

let concurrent_entry () =
  let config = { Perseas.default_config with group_commit = 2 * concurrency_clients } in
  let bed = T.replicated_bed ~config ~mirrors:1 () in
  let t = bed.T.perseas in
  let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
  let rng = Sim.Rng.create 97 in
  (* The R9 experiment's sizing: enough branches that concurrent draws
     are mostly disjoint.  At the default scale (one branch) every
     transaction hits the same branch line and the cell measures
     conflict retries, not the group-commit schedule it gates. *)
  let params =
    {
      Workloads.Debit_credit.scale = 1024;
      accounts_per_branch = 250;
      history_slots = 8192;
      skew = Workloads.Debit_credit.Uniform;
    }
  in
  let db = W.setup t ~params in
  let spec =
    {
      Multi_client.prepare = (fun _ -> W.draw db rng);
      declare = (fun txn d -> W.declare db txn d);
      apply = (fun d -> W.apply db d);
    }
  in
  ignore (Multi_client.run t ~clients:concurrency_clients ~total:1_000 spec);
  let nic = Cluster.nic bed.T.cluster in
  Sci.Nic.reset_counters nic;
  let t0 = Sim.Clock.now bed.T.clock in
  let s = Multi_client.run t ~clients:concurrency_clients ~total:10_000 spec in
  let elapsed_us = Sim.Time.to_us (Sim.Clock.now bed.T.clock - t0) in
  assert (W.consistent db);
  let c = Sci.Nic.counters nic in
  let amortized_us = elapsed_us /. float_of_int s.Multi_client.committed in
  {
    engine = Printf.sprintf "PERSEAS-c%d" concurrency_clients;
    workload = "debit-credit";
    mirrors = 1;
    tps = float_of_int s.Multi_client.committed *. 1e6 /. elapsed_us;
    (* Per-transaction latency percentiles are not defined under group
       commit (commit returns before the batch propagates), so both
       latency columns carry the amortized per-transaction cost. *)
    mean_us = amortized_us;
    p99_us = amortized_us;
    pkts_per_txn =
      Some
        (float_of_int (c.Sci.Nic.packets64 + c.Sci.Nic.packets16)
        /. float_of_int s.Multi_client.committed);
    (* Per-phase percentiles are as undefined as the latency columns
       here: phases of staged transactions land in the convoy's window. *)
    phase_p99 = [];
  }

(* Recovery-time cell: a checkpointed debit-credit database loses its
   primary and is rebuilt on the checkpoint target's node from the slot
   plus the mirror tail.  tps is recoveries/second and both latency
   columns carry the recovery time itself, so the debit-credit tps gate
   also fails CI when checkpointed recovery slows by more than the
   tolerance. *)
let checkpoint_entry () =
  let clock = Sim.Clock.create () in
  let specs =
    List.mapi
      (fun i n -> Cluster.spec ~dram_size:(64 * 1024 * 1024) ~power_supply:i n)
      [ "primary"; "mirror"; "ckpt"; "spare" ]
  in
  let cluster = Cluster.create ~clock specs in
  let server = Netram.Server.create (Cluster.node cluster 1) in
  let client = Netram.Client.create ~cluster ~local:0 ~server in
  let t = Perseas.init_replicated [ client ] in
  let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
  let rng = Sim.Rng.create 7 in
  let db = W.setup t ~params:Workloads.Debit_credit.default_params in
  let ckpt_server = Netram.Server.create (Cluster.node cluster 2) in
  Perseas.Checkpoint.set_ram_target t ~server:ckpt_server;
  for _ = 1 to 2_000 do
    W.transaction db rng
  done;
  ignore (Perseas.Checkpoint.take t);
  for _ = 1 to 200 do
    W.transaction db rng
  done;
  ignore (Cluster.crash_node cluster 0 Cluster.Failure.Software_error);
  let t0 = Sim.Clock.now clock in
  let t2 =
    Perseas.recover_replicated ~config:(Perseas.config t)
      ~checkpoint:(Perseas.Ram_source ckpt_server) ~cluster ~local:2 ~servers:[ server ] ()
  in
  let recovery_us = Sim.Time.to_us (Sim.Clock.now clock - t0) in
  assert (Perseas.verify_mirrors t2 = []);
  {
    engine = "PERSEAS-ckpt";
    workload = "debit-credit";
    mirrors = 1;
    tps = 1e6 /. recovery_us;
    mean_us = recovery_us;
    p99_us = recovery_us;
    pkts_per_txn = None;
    phase_p99 = [];
  }

(* Sharded cell: 4 shards at one mirror each, 5 cross-shard transfers
   per 100 singles through the single-master phases — the R13 protocol
   under gate.  tps is aggregate over the frontier clock; both latency
   columns carry the amortized per-transaction cost (group commit plus
   phase fences make per-transaction percentiles undefined here, as in
   the concurrency cell).  Baselines written before this cell existed
   simply lack it, and the comparator treats a missing baseline cell as
   informational, so the gate stays backward-compatible. *)
let sharded_shards = 4

let sharded_entry () =
  let params =
    {
      Workloads.Debit_credit.scale = 4;
      accounts_per_branch = 10_000;
      history_slots = 4096;
      skew = Workloads.Debit_credit.Zipf 0.8;
    }
  in
  let cell =
    Sharding.run_cell ~params ~warmup:600 ~total:6_000 ~shards:sharded_shards ~cross_per_100:5 ()
  in
  let txns = cell.Sharding.c_committed + cell.Sharding.c_cross in
  let amortized_us = cell.Sharding.c_elapsed_us /. float_of_int txns in
  {
    engine = Printf.sprintf "PERSEAS-s%d" sharded_shards;
    workload = "debit-credit";
    mirrors = 1;
    tps = cell.Sharding.c_tps;
    mean_us = amortized_us;
    p99_us = amortized_us;
    pkts_per_txn = Some cell.Sharding.c_pkts_per_txn;
    phase_p99 = [];
  }

let collect () =
  List.concat_map
    (fun (engine, mirrors, make) ->
      List.map
        (fun w ->
          let r, pkts, phase_p99 = measure (make ()) w in
          {
            engine;
            workload = workload_label w;
            mirrors;
            tps = r.Measure.tps;
            mean_us = r.Measure.mean_us;
            p99_us = r.Measure.p99_us;
            pkts_per_txn = pkts;
            phase_p99;
          })
        workloads)
    engines
  @ [ concurrent_entry (); checkpoint_entry (); sharded_entry () ]

let to_json entries =
  let cell e =
    let pkts =
      match e.pkts_per_txn with
      | Some p -> Printf.sprintf ", \"pkts_per_txn\": %.2f" p
      | None -> ""
    in
    let phases =
      match e.phase_p99 with
      | [] -> ""
      | ps ->
          Printf.sprintf ", \"phase_p99_us\": { %s }"
            (String.concat ", "
               (List.map (fun (name, p) -> Printf.sprintf "%S: %.4f" name p) ps))
    in
    Printf.sprintf
      "    { \"engine\": %S, \"workload\": %S, \"mirrors\": %d, \"tps\": %.1f, \"mean_us\": \
       %.4f, \"p99_us\": %.4f%s%s }"
      e.engine e.workload e.mirrors e.tps e.mean_us e.p99_us pkts phases
  in
  "{\n  \"schema\": \"perseas-bench-summary/1\",\n  \"entries\": [\n"
  ^ String.concat ",\n" (List.map cell entries)
  ^ "\n  ]\n}\n"

let of_json j =
  let entry e =
    let num k = Json.to_float (Json.member_exn k e) in
    {
      engine = Json.to_string (Json.member_exn "engine" e);
      workload = Json.to_string (Json.member_exn "workload" e);
      mirrors = Json.to_int (Json.member_exn "mirrors" e);
      tps = num "tps";
      mean_us = num "mean_us";
      p99_us = num "p99_us";
      (* Absent in baselines written before the packet column existed. *)
      pkts_per_txn = Option.map Json.to_float (Json.member "pkts_per_txn" e);
      (* Likewise absent before the per-phase tail column; an old
         baseline still gates on tps/pkts/p99, just without
         attribution. *)
      phase_p99 =
        (match Json.member "phase_p99_us" e with
        | None -> []
        | Some o -> List.map (fun (k, v) -> (k, Json.to_float v)) (Json.to_obj o));
    }
  in
  List.map entry (Json.to_list (Json.member_exn "entries" j))

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_json (Json.parse_exn s)

let write ~path entries =
  let oc = open_out path in
  output_string oc (to_json entries);
  close_out oc

(* ------------------------------------------------------------------ *)
(* The gate                                                            *)

type verdict = {
  entry : entry;
  baseline_tps : float option;
  delta_pct : float option;  (* negative = regression *)
  baseline_pkts : float option;
  pkts_delta_pct : float option;  (* positive = more packets *)
  baseline_p99 : float option;
  p99_delta_pct : float option;  (* positive = slower tail *)
  baseline_phase_p99 : (string * float) list;  (* [] when the baseline predates it *)
  gated : bool;  (* part of the hard gate (debit-credit tps + pkts + p99) *)
  failed : bool;
}

let compare_to_baseline ?(tolerance_pct = 10.0) ?(pkts_tolerance_pct = 2.0)
    ?(p99_tolerance_pct = 20.0) ~baseline current =
  let find e =
    List.find_opt
      (fun b -> b.engine = e.engine && b.workload = e.workload && b.mirrors = e.mirrors)
      baseline
  in
  let verdicts =
    List.map
      (fun e ->
        let gated = e.workload = "debit-credit" in
        match find e with
        | None ->
            {
              entry = e;
              baseline_tps = None;
              delta_pct = None;
              baseline_pkts = None;
              pkts_delta_pct = None;
              baseline_p99 = None;
              p99_delta_pct = None;
              baseline_phase_p99 = [];
              gated;
              failed = false;
            }
        | Some b ->
            let delta = 100.0 *. (e.tps -. b.tps) /. b.tps in
            (* The packet gate only engages when both sides carry the
               column — baselines written before it existed gate on tps
               alone. *)
            let pkts_delta =
              match (e.pkts_per_txn, b.pkts_per_txn) with
              | Some cur, Some base when base > 0.0 -> Some (100.0 *. (cur -. base) /. base)
              | _ -> None
            in
            (* Tail-latency gate: a tps-neutral change can still push
               the p99 out (a longer worst-case convoy, a new stall in
               one phase), so the debit-credit tail is held to its own
               tolerance. *)
            let p99_delta =
              if b.p99_us > 0.0 then Some (100.0 *. (e.p99_us -. b.p99_us) /. b.p99_us) else None
            in
            {
              entry = e;
              baseline_tps = Some b.tps;
              delta_pct = Some delta;
              baseline_pkts = b.pkts_per_txn;
              pkts_delta_pct = pkts_delta;
              baseline_p99 = Some b.p99_us;
              p99_delta_pct = p99_delta;
              baseline_phase_p99 = b.phase_p99;
              gated;
              failed =
                gated
                && (delta < -.tolerance_pct
                   || (match pkts_delta with Some d -> d > pkts_tolerance_pct | None -> false)
                   || match p99_delta with Some d -> d > p99_tolerance_pct | None -> false);
            })
      current
  in
  (* Baseline coverage dropped from the matrix is a gate failure too —
     a silently vanished cell must not read as a pass. *)
  let missing =
    List.filter
      (fun b ->
        b.workload = "debit-credit"
        && not
             (List.exists
                (fun e ->
                  e.engine = b.engine && e.workload = b.workload && e.mirrors = b.mirrors)
                current))
      baseline
  in
  let verdicts =
    verdicts
    @ List.map
        (fun b ->
          {
            entry = b;
            baseline_tps = Some b.tps;
            delta_pct = None;
            baseline_pkts = b.pkts_per_txn;
            pkts_delta_pct = None;
            baseline_p99 = Some b.p99_us;
            p99_delta_pct = None;
            baseline_phase_p99 = b.phase_p99;
            gated = true;
            failed = true;
          })
        missing
  in
  (verdicts, List.exists (fun v -> v.failed) verdicts)

let print_verdicts ~tolerance_pct verdicts =
  let header =
    [ "engine"; "workload"; "mirrors"; "baseline tps"; "tps"; "delta"; "pkts/txn"; "pkts delta";
      "p99 (us)"; "p99 delta"; "gate" ]
  in
  let fmt_pkts = function Some p -> Printf.sprintf "%.2f" p | None -> "-" in
  let rows =
    List.map
      (fun v ->
        [
          v.entry.engine;
          v.entry.workload;
          (if v.entry.mirrors = 0 then "-" else string_of_int v.entry.mirrors);
          (match v.baseline_tps with Some t -> Table.fmt_tps t | None -> "(new)");
          (match v.delta_pct with None when v.baseline_tps <> None -> "MISSING"
          | _ -> Table.fmt_tps v.entry.tps);
          (match v.delta_pct with Some d -> Printf.sprintf "%+.1f%%" d | None -> "-");
          fmt_pkts v.entry.pkts_per_txn;
          (match v.pkts_delta_pct with Some d -> Printf.sprintf "%+.1f%%" d | None -> "-");
          Table.fmt_us v.entry.p99_us;
          (match v.p99_delta_pct with Some d -> Printf.sprintf "%+.1f%%" d | None -> "-");
          (if v.failed then "FAIL" else if v.gated then "ok" else "info");
        ])
      verdicts
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Bench gate: debit-credit tps within %.0f%% of baseline, packets/txn not up, p99 not \
          blown (other cells informational)"
         tolerance_pct)
    ~header rows;
  (* A failed cell gets its tail attributed: which phase's p99 moved,
     so the gate's verdict names a suspect instead of just a number. *)
  List.iter
    (fun v ->
      if v.failed && v.entry.phase_p99 <> [] then begin
        Printf.printf "%s %s x%d p99 attribution (phase: now vs baseline):\n" v.entry.engine
          v.entry.workload v.entry.mirrors;
        if v.baseline_phase_p99 = [] then
          print_endline "  no per-phase baseline (older schema) - current p99 per phase only";
        let moved =
          List.map
            (fun (name, p) ->
              let base = List.assoc_opt name v.baseline_phase_p99 in
              let delta = match base with Some b when b > 0. -> Some (p -. b) | _ -> None in
              (name, p, base, delta))
            v.entry.phase_p99
        in
        let key = function _, _, _, Some d -> -.abs_float d | _, p, _, None -> -.p in
        List.iter
          (fun (name, p, base, delta) ->
            Printf.printf "  %-18s %8.2f us%s\n" name p
              (match (base, delta) with
              | Some b, Some d -> Printf.sprintf " vs %8.2f us (%+.2f us)" b d
              | _ -> ""))
          (List.sort (fun a b -> compare (key a) (key b)) moved)
      end)
    verdicts
