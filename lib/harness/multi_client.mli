(** Simulated multi-client load over one PERSEAS instance.

    The simulation is single-threaded deterministic virtual time, so
    "concurrent clients" means interleaved transaction {e phases}: the
    round-robin driver advances one client per turn — begin + declare
    on one turn, apply + commit on a later one — keeping up to
    [clients] disjoint transactions genuinely in flight between turns.
    That in-flight window is what group commit batches over and what
    the {!Perseas.Conflict} machinery polices; losers retry with the
    same drawn work a round later (wound-wait: the younger, cheaper
    party re-runs). *)

type stats = {
  committed : int;  (** Transactions that reached commit. *)
  conflicts : int;  (** {!Perseas.Conflict} losses (each one retried). *)
  attempts : int;  (** Begins, i.e. [committed] + retried losses. *)
}

val client_name : int -> string
(** ["client-<i>"] — the name the driver begins transactions under. *)

val with_retries : ?max_attempts:int -> Perseas.t -> client:string -> (Perseas.txn -> unit) -> int
(** Run [body] (declares and writes; no commit) under a fresh
    transaction for [client] and commit it; on {!Perseas.Conflict} —
    the transaction is already rolled back — begin again and re-run,
    up to [max_attempts] (default 16) times.  Returns the number of
    conflicts absorbed; the last attempt's [Conflict] propagates. *)

type 'a spec = {
  prepare : int -> 'a;
      (** Draw one transaction's work for client [i] (consume the rng
          here, once — retries reuse the draw). *)
  declare : Perseas.txn -> 'a -> unit;  (** The [set_range] phase. *)
  apply : 'a -> unit;  (** The in-place writes; runs just before commit. *)
}

val run : Perseas.t -> clients:int -> total:int -> 'a spec -> stats
(** Drive [clients] round-robin until [total] transactions commit,
    then abort any parked transactions and {!Perseas.flush} the staged
    tail so the database quiesces committed.  Conflicted work is
    retried (same draw) on the loser's next turn. *)

(** {1 Sharded driver}

    The same phase-interleaved population, replicated per shard of a
    {!Perseas.Shard.t} router.  Each shard's clients run against that
    shard's primary on that shard's clock, so turns on different
    shards overlap in virtual time — the sharding speedup the router
    exists to deliver.  Cross-shard transactions are injected through
    {!Perseas.Shard.submit_cross} and commit during the router's
    single-master phases. *)

type sharded_stats = {
  ss_committed : int;  (** Single-shard commits, summed over shards. *)
  ss_cross_committed : int;  (** Cross-shard transactions drained. *)
  ss_conflicts : int;  (** Single-shard conflict losses (retried). *)
  ss_attempts : int;  (** Single-shard begins. *)
  ss_switches : int;  (** Single-master phases entered during the run. *)
}

type 'a shard_spec = {
  sh_prepare : shard:int -> client:int -> 'a;
      (** Draw one transaction's work for [client] of [shard]. *)
  sh_declare : shard:int -> Perseas.txn -> 'a -> unit;
  sh_apply : shard:int -> 'a -> unit;
}

val run_sharded :
  Perseas.Shard.t ->
  clients:int ->
  total:int ->
  ?cross_every:int ->
  ?cross:(unit -> (int * 'a) list) ->
  'a shard_spec ->
  sharded_stats
(** Drive [clients] clients per shard, one turn on every shard per
    round, until [total] single-shard transactions commit across the
    router; the router {!Perseas.Shard.tick}s once per round so due
    phase switches land at turn boundaries.  Every [cross_every]
    single-shard commits (0 = never), [cross ()] draws one cross-shard
    transaction as [(shard, work)] pieces, enqueued via
    {!Perseas.Shard.submit_cross} with [sh_declare]s for every piece
    followed by [sh_apply]s.  On return the backlog is fully drained
    and every shard is flushed and fenced. *)
