(* Harness for the sharded multi-primary cluster (Perseas.Shard): beds
   with one replicated PERSEAS world per shard, a debit-credit loader
   that splits the bank across the shards, a measured cell runner for
   the scaling experiment, and the shard-failover extension of the
   zero-committed-data-loss oracle. *)

open Sim
module P = Perseas
module W = Workloads.Debit_credit.Make (P.Engine)
module DC = Workloads.Debit_credit

(* ------------------------------------------------------------------ *)
(* Beds *)

type shard_bed = {
  sb_clock : Clock.t;
  sb_cluster : Cluster.t;
  sb_servers : Netram.Server.t list;
  sb_spare : int;  (** Node id of the cold spare (own power supply). *)
}

type bed = { router : P.Shard.t; shard_beds : shard_bed array; mirrors : int }

let mb n = n * 1024 * 1024

(* Each shard is a full PERSEAS world of its own: a primary, [mirrors]
   mirrors and a cold spare, every node on a distinct power supply, on
   the shard's own cluster and clock.  Independent clocks are the
   point — commits on shard 0 leave shard 1's virtual time untouched,
   so a round of commits across N shards costs one commit's worth of
   virtual time, not N. *)
let make_bed ?config ?strategy ?interval ?(dram_mb = 64) ?(mirrors = 1) ~shards () =
  if shards < 1 then invalid_arg "Sharding.make_bed: at least one shard";
  if mirrors < 1 then invalid_arg "Sharding.make_bed: at least one mirror";
  let shard_beds =
    Array.init shards (fun s ->
        let clock = Clock.create () in
        let specs =
          Cluster.spec ~dram_size:(mb dram_mb) ~power_supply:0 (Printf.sprintf "shard%d-primary" s)
          :: List.init mirrors (fun i ->
                 Cluster.spec ~dram_size:(mb dram_mb) ~power_supply:(i + 1)
                   (Printf.sprintf "shard%d-mirror%d" s i))
          @ [
              Cluster.spec ~dram_size:(mb dram_mb) ~power_supply:(mirrors + 1)
                (Printf.sprintf "shard%d-spare" s);
            ]
        in
        let cluster = Cluster.create ~clock specs in
        let servers =
          List.init mirrors (fun i -> Netram.Server.create (Cluster.node cluster (i + 1)))
        in
        { sb_clock = clock; sb_cluster = cluster; sb_servers = servers; sb_spare = mirrors + 1 })
  in
  let dbs =
    Array.map
      (fun b ->
        let clients =
          List.map
            (fun server -> Netram.Client.create ~cluster:b.sb_cluster ~local:0 ~server)
            b.sb_servers
        in
        P.init_replicated ?config clients)
      shard_beds
  in
  { router = P.Shard.create ?strategy ?interval dbs; shard_beds; mirrors }

let total_packets bed =
  Array.fold_left
    (fun acc b ->
      let c = Sci.Nic.counters (Cluster.nic b.sb_cluster) in
      acc + c.Sci.Nic.packets64 + c.Sci.Nic.packets16)
    0 bed.shard_beds

let reset_packets bed =
  Array.iter (fun b -> Sci.Nic.reset_counters (Cluster.nic b.sb_cluster)) bed.shard_beds

(* ------------------------------------------------------------------ *)
(* Debit-credit over the shards *)

type loaded = {
  l_bed : bed;
  l_dbs : W.db array;
  l_rngs : Rng.t array; (* one stream per shard, split from the seed *)
  l_route : Rng.t; (* picks the shards of a cross-shard transfer *)
  l_clients : int;
}

let load_debit_credit ?(params = DC.small_params) ?(clients = 4) ?(seed = 42) bed =
  let shards = P.Shard.shards bed.router in
  let dbs = Array.init shards (fun s -> W.setup (P.Shard.db bed.router s) ~params) in
  let root = Rng.create seed in
  let rngs = Array.init shards (fun _ -> Rng.split root) in
  { l_bed = bed; l_dbs = dbs; l_rngs = rngs; l_route = Rng.split root; l_clients = clients }

let spec l =
  {
    Multi_client.sh_prepare = (fun ~shard ~client:_ -> W.draw l.l_dbs.(shard) l.l_rngs.(shard));
    sh_declare = (fun ~shard txn d -> W.declare l.l_dbs.(shard) txn d);
    sh_apply = (fun ~shard d -> W.apply l.l_dbs.(shard) d);
  }

(* One cross-shard transfer: a debit-credit transaction on each of two
   distinct shards, the second delta negated so the money provably
   moves between banks (each shard's own TPC-B invariant holds either
   way — every piece applies one delta to its account, teller and
   branch alike). *)
let cross_draw l () =
  let shards = Array.length l.l_dbs in
  if shards < 2 then []
  else begin
    let a = Rng.int l.l_route shards in
    let b = (a + 1 + Rng.int l.l_route (shards - 1)) mod shards in
    let da = W.draw l.l_dbs.(a) l.l_rngs.(a) in
    let db = W.draw l.l_dbs.(b) l.l_rngs.(b) in
    [ (a, da); (b, { db with W.delta = Int64.neg da.W.delta }) ]
  end

let run l ~total ?(cross_every = 0) () =
  Multi_client.run_sharded l.l_bed.router ~clients:l.l_clients ~total ~cross_every
    ~cross:(cross_draw l) (spec l)

let consistent l = Array.for_all W.consistent l.l_dbs
let checksum l ~shard = W.checksum l.l_dbs.(shard)

(* Point the router and the workload at a freshly recovered engine for
   [shard] — the sharded counterpart of what the churn harness does
   after [recover_replicated]. *)
let adopt l ~shard t2 =
  P.Shard.replace l.l_bed.router ~shard t2;
  let db = l.l_dbs.(shard) in
  l.l_dbs.(shard) <-
    {
      db with
      W.engine = t2;
      W.accounts = Option.get (P.segment t2 "accounts");
      W.tellers = Option.get (P.segment t2 "tellers");
      W.branches = Option.get (P.segment t2 "branches");
      W.history = Option.get (P.segment t2 "history");
    }

(* ------------------------------------------------------------------ *)
(* Measured cell for the scaling experiment *)

type cell = {
  c_shards : int;
  c_cross_per_100 : int;
  c_committed : int; (* single-shard commits *)
  c_cross : int;
  c_conflicts : int;
  c_switches : int;
  c_elapsed_us : float;
  c_tps : float; (* aggregate, over the frontier clock *)
  c_pkts_per_txn : float;
}

let run_cell ?config ?interval ?(mirrors = 1) ?(clients = 4) ?(dram_mb = 64) ?params ?(seed = 42)
    ?(warmup = 400) ?(total = 4000) ~shards ~cross_per_100 () =
  let config =
    match config with Some c -> c | None -> { P.default_config with group_commit = 8 }
  in
  let bed = make_bed ~config ?interval ~dram_mb ~mirrors ~shards () in
  let l = load_debit_credit ?params ~clients ~seed bed in
  let cross_every = if cross_per_100 <= 0 then 0 else max 1 (100 / cross_per_100) in
  ignore (run l ~total:warmup ~cross_every ());
  (* run_sharded fenced on its way out; measure from the quiesced
     frontier with fresh NIC counters. *)
  reset_packets bed;
  let t0 = P.Shard.now bed.router in
  let s = run l ~total ~cross_every () in
  if not (consistent l) then failwith "Sharding.run_cell: TPC-B invariant violated";
  let elapsed_us = Time.to_us (P.Shard.now bed.router - t0) in
  let txns = s.Multi_client.ss_committed + s.Multi_client.ss_cross_committed in
  {
    c_shards = shards;
    c_cross_per_100 = cross_per_100;
    c_committed = s.Multi_client.ss_committed;
    c_cross = s.Multi_client.ss_cross_committed;
    c_conflicts = s.Multi_client.ss_conflicts;
    c_switches = s.Multi_client.ss_switches;
    c_elapsed_us = elapsed_us;
    c_tps = float_of_int txns *. 1e6 /. elapsed_us;
    c_pkts_per_txn = float_of_int (total_packets bed) /. float_of_int txns;
  }

(* ------------------------------------------------------------------ *)
(* Shard failover: the zero-committed-data-loss oracle, extended *)

type failover = {
  f_before : Multi_client.sharded_stats;
  f_after : Multi_client.sharded_stats;
  f_data_preserved : bool; (* recovered image == committed image *)
  f_consistent : bool; (* every shard's TPC-B invariant, before + after *)
  f_alerts : int; (* protocol-monitor alerts across all shards *)
}

let failover ?(shards = 2) ?(mirrors = 1) ?(victim = 0) ?(clients = 3) ?(traffic = 150)
    ?(cross_every = 10) ?params ?(seed = 7) () =
  if victim < 0 || victim >= shards then invalid_arg "Sharding.failover: victim out of range";
  let config = { P.default_config with group_commit = 4 } in
  let bed = make_bed ~config ~dram_mb:16 ~mirrors ~shards () in
  let l = load_debit_credit ?params ~clients ~seed bed in
  (* One protocol monitor per shard, wired as each engine's sink: it
     sees the shard's packet instants plus the router's phase-switch
     and cross-commit instants, so the STAR rule (cross-shard commits
     only inside single-master phases) is checked live. *)
  let monitors =
    Array.init shards (fun s ->
        let m = Trace.Monitor.create () in
        P.set_sink (P.Shard.db bed.router s) (Trace.Monitor.sink m);
        m)
  in
  let before = run l ~total:traffic ~cross_every () in
  let consistent0 = consistent l in
  let pre = checksum l ~shard:victim in
  (* Kill the victim shard's primary and rebuild it on that shard's
     spare from its own mirrors — no other shard is touched. *)
  let vb = bed.shard_beds.(victim) in
  ignore (Cluster.crash_node vb.sb_cluster 0 Cluster.Failure.Software_error);
  let t2 =
    P.recover_replicated ~config
      ~sink:(Trace.Monitor.sink monitors.(victim))
      ~cluster:vb.sb_cluster ~local:vb.sb_spare ~servers:vb.sb_servers ()
  in
  adopt l ~shard:victim t2;
  let f_data_preserved = checksum l ~shard:victim = pre in
  (* The cluster keeps going: more traffic, cross-shard included, with
     the recovered engine serving its shard from the spare node. *)
  let after = run l ~total:traffic ~cross_every () in
  let consistent1 = consistent l in
  {
    f_before = before;
    f_after = after;
    f_data_preserved;
    f_consistent = consistent0 && consistent1;
    f_alerts = Array.fold_left (fun acc m -> acc + Trace.Monitor.alert_count m) 0 monitors;
  }
