open Sim

(** Churn experiment: a live debit-credit workload runs while a
    seeded failure/repair process pauses and crashes mirror nodes, and
    a {!Perseas.Supervisor} heals the replication factor from a spare
    pool — transient outages come back with an incremental resync,
    rebooted nodes with a full copy.  The oracle is the paper's core
    durability promise: no committed transaction is ever lost. *)

type kind = Pause  (** transient outage; the node's DRAM survives *)
          | Crash  (** node reboot; its exported segments are gone *)

type params = {
  seed : int;
  mirrors : int;  (** initial mirrors = the replication target *)
  spares : int;  (** spare-pool size *)
  duration : Time.t;  (** failure-injection horizon *)
  mtbf : Time.t;  (** mean time between failure injections *)
  outage : Time.t;  (** mean outage before the repair process acts *)
  pause_fraction : float;  (** P(transient pause) vs node crash *)
  policy : Perseas.Supervisor.policy;
  checkpoint_interval : Time.t option;
      (** When set (default [None]), a dedicated extra node (appended
          after the observer, so the checkpoint-free node layout is
          unchanged) holds a {!Perseas.Checkpoint} RAM target and the
          background checkpointer fires every interval of virtual time
          while the churn schedule runs — so supervisor recruitments
          resync incrementally across log truncations, and the final
          kill-the-primary recovery restores from the checkpoint plus
          the mirror tail. *)
}

val default_params : params

type injection = { at : Time.t; node : int; kind : kind }

type window = {
  w_node : int;  (** the loss that opened the window *)
  w_kind : kind option;
  w_start : Time.t;
  w_restored : Time.t;
  w_resyncs : Perseas.resync_report list;
      (** the recruitments that closed it *)
}
(** A degraded window: from the moment the factor first drops below
    target until the recruitment that restores it. *)

type report = {
  committed : int;
  outage_retries : int;  (** transactions retried after [All_mirrors_lost] *)
  injections : injection list;  (** oldest first *)
  nodes_hit : int list;
  windows : window list;
  degraded_time : Time.t;
  run_time : Time.t;
  tps : float;  (** committed throughput, outage waits included *)
  incremental_resyncs : int;
  full_resyncs : int;
  incremental_bytes : int;
  full_resync_bytes : int;
  full_copy_bytes : int;  (** what one full copy of the database moves *)
  stats : Perseas.stats;
  factor_restored : bool;
  consistent_under_churn : bool;
  verify_clean : bool;
  committed_data_preserved : bool;
      (** the image recovered on a fresh workstation after killing the
          primary matches the per-segment checksums taken at quiesce *)
  recovered_consistent : bool;
  supervisor_events : Perseas.Supervisor.event list;
}

exception Oracle_violation of string

val run :
  ?params:params ->
  ?telemetry:Trace.Timeseries.t * Time.t ->
  ?postmortem:string ->
  ?sink:Trace.Sink.t ->
  unit ->
  report
(** Build a cluster of primary + mirrors + spares + an observer node
    (each on its own power supply), run the seeded churn schedule, then
    quiesce, scrub, kill the primary and recover on the observer.
    Returns the full report without judging it; {!check} enforces the
    oracle.

    [postmortem] (a directory) attaches a {!Forensics.t} flight
    recorder for the whole run, including the final recovery.  A
    {!Trace.Monitor} alert — or a failed {!check}, which [run] then
    performs itself — dumps the post-mortem bundle into the directory
    and raises {!Oracle_violation}.  The recorder is a pure observer:
    postmortem-on runs are byte-identical to postmortem-off ones.

    [sink] is tee'd next to the flight recorder on the engine's span
    stream for the churn portion of the run (an observer feeding a
    {!Trace.Tail}, typically) — same purity contract.

    [telemetry:(series, interval)] instruments the whole stack — the
    engine, the supervisor, every memory server (including ones respawned
    after a crash) and the NIC — and samples [series] every [interval]
    of virtual time, from the start of the churn schedule through
    quiesce (capped at 4x [duration]).
    The sampler lives on its own event queue, pumped only where the
    clock already advances, so instrumented runs take byte-identical
    scheduling decisions to bare ones.  Derived gauges [rate.tps],
    [rate.bytes_per_s] and [rate.rpc_per_s] are sliding-window rates
    over one sampling interval. *)

val check : report -> unit
(** Raises {!Oracle_violation} unless the factor was restored, the
    TPC-B invariant held under churn and after recovery, every mirror
    scrubbed clean at quiesce, and the recovered image matched the
    committed one byte for byte. *)

val kind_label : kind -> string
val csv_header : string list
val report_rows : report -> string list list
