(** The benchmark matrix behind the CI perf gate.

    [collect] measures virtual tps / mean / p99 for every engine and
    workload — PERSEAS at 1, 2 and 3 mirrors, then each single-node
    baseline — and the result round-trips through
    [BENCH_summary.json].  All numbers are deterministic virtual time,
    so {!compare_to_baseline}'s tolerance only absorbs intended model
    drift, never machine noise. *)

type entry = {
  engine : string;
  workload : string;
  mirrors : int;  (** 0 for single-node baselines *)
  tps : float;
  mean_us : float;
  p99_us : float;
  pkts_per_txn : float option;
      (** PERSEAS cells only: SCI packets (64 B + 16 B) per transaction
          over the warmup + measured window; [None] for single-node
          baselines and for JSON written before this column existed. *)
  phase_p99 : (string * float) list;
      (** PERSEAS eager cells only: p99 virtual microseconds per [txn]
          phase over the same window, from a live {!Trace.Tail}; [[]]
          for baselines, group-commit/recovery cells, and JSON written
          before the [phase_p99_us] field existed. *)
}

val collect : unit -> entry list
(** Run the full matrix, a fresh testbed per cell, plus the
    ["PERSEAS-c8"] concurrency cell: debit-credit under 8 interleaved
    clients at one mirror with group commit, whose latency columns
    carry the amortized per-transaction cost (per-transaction
    percentiles are undefined when commit returns before the batch
    propagates).  Its packets/txn column puts the group-commit
    schedule under the same CI gate as the eager cells.

    Also includes the ["PERSEAS-ckpt"] recovery cell: a checkpointed
    debit-credit database loses its primary and is rebuilt on the
    checkpoint target's node from the slot plus the mirror tail; tps is
    recoveries/second and both latency columns carry the recovery time,
    so the same debit-credit gate fails CI when checkpointed recovery
    regresses. *)

val to_json : entry list -> string
val of_json : Json.t -> entry list
(** Raises [Failure] on a malformed document. *)

val load : string -> entry list
val write : path:string -> entry list -> unit

type verdict = {
  entry : entry;
  baseline_tps : float option;  (** [None]: cell absent from baseline *)
  delta_pct : float option;  (** tps change vs baseline; negative = slower *)
  baseline_pkts : float option;
  pkts_delta_pct : float option;
      (** packets/txn change vs baseline; positive = more packets.
          [None] when either side lacks the column. *)
  baseline_p99 : float option;
  p99_delta_pct : float option;
      (** p99 latency change vs baseline; positive = slower tail.
          [None] when the baseline p99 is zero or the cell is new. *)
  baseline_phase_p99 : (string * float) list;
      (** Baseline per-phase p99s; [[]] when the baseline predates the
          column (the gate still judges, without attribution). *)
  gated : bool;  (** counted by the hard gate (debit-credit cells) *)
  failed : bool;
}

val compare_to_baseline :
  ?tolerance_pct:float ->
  ?pkts_tolerance_pct:float ->
  ?p99_tolerance_pct:float ->
  baseline:entry list ->
  entry list ->
  verdict list * bool
(** Judge a fresh matrix against a baseline: a debit-credit cell more
    than [tolerance_pct] (default 10) slower fails, as does one whose
    packets/txn grew by more than [pkts_tolerance_pct] (default 2;
    only when both sides carry the column), as does one whose p99
    latency grew by more than [p99_tolerance_pct] (default 20 — the
    tail is noisier than the mean, so it gets more headroom but is
    still gated), as does a debit-credit baseline cell missing from
    the fresh matrix.  Other cells are informational.  Returns the
    per-cell verdicts and whether anything failed. *)

val print_verdicts : tolerance_pct:float -> verdict list -> unit
(** Aligned verdict table on stdout.  A failed cell carrying per-phase
    p99s is followed by its tail attribution — each phase's p99 now vs
    baseline, biggest mover first — so a blown gate names the phase
    that moved, not just the number. *)
