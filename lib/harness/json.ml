(* A small recursive-descent JSON parser.  The harness emits JSON in a
   few places (stats, bench summaries, gauge snapshots, Chrome traces);
   this is the matching reader, used by the regression gate to load a
   committed baseline and by the tests to check that what we emit
   actually parses — with escapes, not just by eye. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected %C, found %C" c c')
  | None -> error st (Printf.sprintf "expected %C, found end of input" c)

let expect_lit st lit v =
  let n = String.length lit in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = lit then (
    st.pos <- st.pos + n;
    v)
  else error st (Printf.sprintf "expected %s" lit)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
  let s = String.sub st.src st.pos 4 in
  let code =
    try int_of_string ("0x" ^ s) with _ -> error st (Printf.sprintf "bad \\u escape %S" s)
  in
  st.pos <- st.pos + 4;
  code

(* Encode a Unicode scalar value as UTF-8. *)
let utf8_add buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then (
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
  else if code < 0x10000 then (
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
  else (
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let code = parse_hex4 st in
                (* Surrogate pair: a high surrogate must be followed by
                   \uDC00-\uDFFF; combine into one scalar value. *)
                let code =
                  if code >= 0xD800 && code <= 0xDBFF then (
                    if
                      st.pos + 2 <= String.length st.src
                      && st.src.[st.pos] = '\\'
                      && st.src.[st.pos + 1] = 'u'
                    then (
                      st.pos <- st.pos + 2;
                      let lo = parse_hex4 st in
                      if lo < 0xDC00 || lo > 0xDFFF then error st "unpaired high surrogate";
                      0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00))
                    else error st "unpaired high surrogate")
                  else if code >= 0xDC00 && code <= 0xDFFF then error st "unpaired low surrogate"
                  else code
                in
                utf8_add buf code
            | c -> error st (Printf.sprintf "bad escape \\%c" c));
            go ()
        )
    | Some c when Char.code c < 0x20 -> error st "unescaped control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    let rec go () =
      match peek st with
      | Some c when pred c ->
          advance st;
          go ()
      | _ -> ()
    in
    go ()
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  consume_while (fun c -> c >= '0' && c <= '9');
  (match peek st with
  | Some '.' ->
      advance st;
      consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> error st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> expect_lit st "true" (Bool true)
  | Some 'f' -> expect_lit st "false" (Bool false)
  | Some 'n' -> expect_lit st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected %C" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  match peek st with
  | Some '}' ->
      advance st;
      Obj []
  | _ ->
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            members ((key, v) :: acc)
        | Some '}' ->
            advance st;
            Obj (List.rev ((key, v) :: acc))
        | _ -> error st "expected ',' or '}'"
      in
      members []

and parse_list st =
  expect st '[';
  skip_ws st;
  match peek st with
  | Some ']' ->
      advance st;
      List []
  | _ ->
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            elements (v :: acc)
        | Some ']' ->
            advance st;
            List (List.rev (v :: acc))
        | _ -> error st "expected ',' or ']'"
      in
      elements []

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s = match parse s with Ok v -> v | Error msg -> failwith ("Json.parse: " ^ msg)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let member_exn key j =
  match member key j with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Json.member_exn: no member %S" key)

let to_float = function
  | Num f -> f
  | j -> failwith (Printf.sprintf "Json.to_float: not a number (%s)" (match j with
      | Null -> "null" | Bool _ -> "bool" | Str _ -> "string" | List _ -> "list"
      | Obj _ -> "object" | Num _ -> assert false))

let to_int j = int_of_float (to_float j)
let to_string = function Str s -> s | _ -> failwith "Json.to_string: not a string"
let to_list = function List l -> l | _ -> failwith "Json.to_list: not a list"
let to_obj = function Obj l -> l | _ -> failwith "Json.to_obj: not an object"
