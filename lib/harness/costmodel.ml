(* The paper's analytic cost model, run online as a trace observer.

   PERSEAS's evaluation derives packets-per-operation in closed form:
   an undo push costs the packetisation of its (possibly 64-byte
   widened) record, a commit ships the write-set's coalesced runs plus
   one 8-byte segment-epoch store per touched segment (tracking mode)
   and one 8-byte fence, and a group-commit convoy packs the batch's
   records into a dense chain and pays the same per-run arithmetic.
   This module re-derives those equations from the engine's
   configuration alone — mirror factor, [group_commit],
   [redundancy_elision], [optimized_memcpy], the NIC's 64/16-byte line
   geometry — and checks them live against the per-transaction packet
   stream: every commit unit's measured NIC counters are compared to
   the prediction the moment that unit's fence packet lands, and any
   excess beyond tolerance raises a typed {!drift} alert.

   The model is deliberately independent of the engine's own dry runs
   ([commit_packets], [flush_step_count]): it never calls into
   [Sci.Packet] or [Sci.Nic], replicating the packetisation and
   widening arithmetic from the segment-relative offsets the spans
   carry.  That works because every segment — local and remote — is
   allocated 64-byte aligned, so congruences and line boundaries are
   identical in segment-relative and physical space.

   Scope: predictions are exact for sequential runs (no doomed
   transactions, no stale-record re-push, no log compaction).
   Concurrent interference shows up as measured > predicted — which is
   precisely the drift the alert exists to surface. *)

open Perseas

type cost = { pkts64 : int; pkts16 : int; bytes : int }

let cost_zero = { pkts64 = 0; pkts16 = 0; bytes = 0 }

let cost_add a b =
  { pkts64 = a.pkts64 + b.pkts64; pkts16 = a.pkts16 + b.pkts16; bytes = a.bytes + b.bytes }

let cost_packets c = c.pkts64 + c.pkts16

let pp_cost ppf c =
  Format.fprintf ppf "%d pkt64 + %d pkt16, %d B" c.pkts64 c.pkts16 c.bytes

type drift = {
  d_unit : string;  (* commit-unit key: "t<id>" (eager) or "c<n>" (convoy) *)
  d_node : int;
  d_class : string; (* "unit" for the per-fence check, "window" for totals *)
  d_predicted : cost;
  d_measured : cost;
}

let describe d =
  Format.asprintf "unit %s on node %d: measured %a, predicted %a" d.d_unit d.d_node pp_cost
    d.d_measured pp_cost d.d_predicted

(* Per-transaction replay of the engine's write-set bookkeeping. *)
type txn_state = {
  mutable x_wset : (int * Iset.t) list; (* seg index -> declared set, ascending *)
  mutable x_recs : (int * int) list; (* (slot, payload_len), newest first *)
  mutable x_frags : (int * int * int) list; (* (seg idx, off, len) logged, newest first *)
  mutable x_undo : cost; (* eager undo pushes predicted, per node *)
}

let fresh_txn () = { x_wset = []; x_recs = []; x_frags = []; x_undo = cost_zero }

(* One commit unit's prediction, per node (every live mirror receives
   the identical byte stream). *)
type unit_pred = { u_undo : cost; u_data : cost; u_segmeta : cost; u_fence : cost }

let unit_total u = cost_add u.u_undo (cost_add u.u_data (cost_add u.u_segmeta u.u_fence))

type t = {
  group : int;
  elision : bool;
  opt_memcpy : bool;
  undo_cap : int;
  tracking : bool;
  buffer : int;
  sub : int;
  threshold : int;
  tolerance_pkts : int;
  on_drift : drift -> unit;
  txns : (string, txn_state) Hashtbl.t;
  mutable staged : (string * txn_state) list; (* staging order *)
  mutable seg_sizes : (int * int) list; (* seg index -> size *)
  mutable tail : int; (* shadow of the engine's undo_tail *)
  units : (string, unit_pred) Hashtbl.t;
  measured : (string * int, cost) Hashtbl.t; (* (unit, node) -> so far *)
  mutable alerts : drift list; (* newest first *)
  mutable nchecked : int;
  mutable predicted_total : cost;
  mutable measured_total : cost;
  mutable unattributed : cost;
  mutable discarded : int;
  class_pred : (string, cost) Hashtbl.t;
  class_meas : (string, cost) Hashtbl.t;
}

let create ?(tolerance_pkts = 0) ?(tracking = false) ?(on_drift = fun _ -> ())
    ~(config : Perseas.config) ~(params : Sci.Params.t) () =
  {
    group = config.group_commit;
    elision = config.redundancy_elision;
    opt_memcpy = config.optimized_memcpy;
    undo_cap = config.undo_capacity;
    tracking;
    buffer = params.Sci.Params.buffer_bytes;
    sub = params.Sci.Params.subblock_bytes;
    threshold = Sci.Params.memcpy_threshold params;
    tolerance_pkts;
    on_drift;
    txns = Hashtbl.create 16;
    staged = [];
    seg_sizes = [];
    tail = 0;
    units = Hashtbl.create 64;
    measured = Hashtbl.create 16;
    alerts = [];
    nchecked = 0;
    predicted_total = cost_zero;
    measured_total = cost_zero;
    unattributed = cost_zero;
    discarded = 0;
    class_pred = Hashtbl.create 8;
    class_meas = Hashtbl.create 8;
  }

(* ------------------------------------------------------------------ *)
(* The analytic equations: packetisation and widening, re-derived      *)

(* Packets of a write burst covering [off, off+len) in destination
   space: one full-line packet per fully covered [buffer]-byte line,
   one partial packet per touched [sub]-byte sub-block otherwise. *)
let packets_of_range t ~off ~len =
  let finish = off + len in
  let rec buffers acc pos =
    if pos >= finish then acc
    else
      let buf_base = pos / t.buffer * t.buffer in
      let buf_end = buf_base + t.buffer in
      let cover_end = min finish buf_end in
      if pos = buf_base && cover_end = buf_end then
        buffers { acc with pkts64 = acc.pkts64 + 1 } buf_end
      else
        let rec subblocks acc pos =
          if pos >= cover_end then acc
          else
            let sb_end = min cover_end ((pos / t.sub * t.sub) + t.sub) in
            subblocks { acc with pkts16 = acc.pkts16 + 1 } sb_end
        in
        buffers (subblocks acc pos) cover_end
  in
  if len <= 0 then cost_zero else buffers { cost_zero with bytes = len } off

(* One remote write of [len] bytes at segment-relative [dst_off], from
   local offset [src_off], into a window of [window_len] bytes: the
   sci_memcpy widening applies when requested, the copy clears the
   threshold, and source and destination agree modulo the line size. *)
let write_cost t ~widen ~window_len ~src_off ~dst_off ~len =
  let dst_off', len' =
    if widen && len > t.threshold && src_off mod t.buffer = dst_off mod t.buffer then begin
      let lo = max 0 (dst_off / t.buffer * t.buffer) in
      let hi = min window_len ((dst_off + len + t.buffer - 1) / t.buffer * t.buffer) in
      if lo <= dst_off && hi >= dst_off + len then (lo, hi - lo) else (dst_off, len)
    end
    else (dst_off, len)
  in
  packets_of_range t ~off:dst_off' ~len:len'

(* An 8-byte epoch store (fence or segment-epoch column): below the
   widening threshold, so exactly its packetisation. *)
let epoch_write_cost t ~dst_off = packets_of_range t ~off:dst_off ~len:8

let fence_cost t = epoch_write_cost t ~dst_off:Layout.epoch_offset

(* ------------------------------------------------------------------ *)
(* Span-driven state machine                                           *)

let find_txn t id =
  match Hashtbl.find_opt t.txns id with
  | Some x -> x
  | None ->
      let x = fresh_txn () in
      Hashtbl.add t.txns id x;
      x

let seg_iset x idx = match List.assoc_opt idx x.x_wset with Some s -> s | None -> Iset.empty

let set_seg_iset x idx s =
  x.x_wset <- List.sort compare ((idx, s) :: List.remove_assoc idx x.x_wset)

let undo_slot_stride t ~off ~payload_len =
  if t.group <= 1 then Layout.undo_slot ~off ~payload_len
  else Layout.undo_slot_packed ~off ~payload_len

(* Reset the shadow tail exactly when the engine's [close] would: the
   log quiesces once no transaction is open or staged. *)
let maybe_quiesce t =
  if Hashtbl.length t.txns = 0 && t.staged = [] then t.tail <- 0

let on_set_range t args =
  match
    ( List.assoc_opt "txn" args,
      Option.bind (List.assoc_opt "idx" args) int_of_string_opt,
      Option.bind (List.assoc_opt "off" args) int_of_string_opt,
      Option.bind (List.assoc_opt "len" args) int_of_string_opt,
      Option.bind (List.assoc_opt "size" args) int_of_string_opt )
  with
  | Some id, Some idx, Some off, Some len, Some size ->
      if not (List.mem_assoc idx t.seg_sizes) then t.seg_sizes <- (idx, size) :: t.seg_sizes;
      let x = find_txn t id in
      let prior = seg_iset x idx in
      let fragments = if t.elision then Iset.uncovered prior ~off ~len else [ (off, len) ] in
      List.iter
        (fun (foff, flen) ->
          let slot = t.tail in
          let record_len = Layout.undo_header_size + flen in
          if t.group <= 1 then
            (* Eager: the record ships to every mirror's log now, from
               the identically-placed local slot, widened like the
               engine's plan_write (window = the whole undo log). *)
            x.x_undo <-
              cost_add x.x_undo
                (write_cost t ~widen:t.opt_memcpy ~window_len:t.undo_cap ~src_off:slot
                   ~dst_off:slot ~len:record_len);
          x.x_recs <- (slot, flen) :: x.x_recs;
          x.x_frags <- (idx, foff, flen) :: x.x_frags;
          t.tail <- undo_slot_stride t ~off:slot ~payload_len:flen)
        fragments;
      set_seg_iset x idx (Iset.add prior ~off ~len)
  | _ -> ()

(* The commit propagation list, replicated from [Perseas.commit_runs]:
   with elision the per-segment coalesced runs (line-glued under
   optimized_memcpy), without it the raw logged fragments oldest first
   — each run one widened remote write into its data segment.  Packet
   counts per plan are independent, so summing per-run costs matches
   the engine whichever way the runs are batched into plans. *)
let data_cost t x =
  let run_cost idx ~off ~len =
    let window_len = Option.value ~default:max_int (List.assoc_opt idx t.seg_sizes) in
    write_cost t ~widen:t.opt_memcpy ~window_len ~src_off:off ~dst_off:off ~len
  in
  if t.elision then
    List.fold_left
      (fun acc (idx, iset) ->
        let iset = if t.opt_memcpy then Iset.glue iset ~align:64 else iset in
        List.fold_left
          (fun acc (off, len) -> cost_add acc (run_cost idx ~off ~len))
          acc (Iset.intervals iset))
      cost_zero x.x_wset
  else
    List.fold_left
      (fun acc (idx, off, len) -> cost_add acc (run_cost idx ~off ~len))
      cost_zero (List.rev x.x_frags)

let segmeta_cost t x =
  if not t.tracking then cost_zero
  else
    List.fold_left
      (fun acc (idx, _) ->
        cost_add acc (epoch_write_cost t ~dst_off:(Layout.table_epoch_off ~index:idx)))
      cost_zero x.x_wset

let class_bump tbl key c =
  let cur = Option.value ~default:cost_zero (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (cost_add cur c)

let record_unit_pred t key u =
  Hashtbl.replace t.units key u

let on_commit t args =
  match List.assoc_opt "txn" args with
  | None -> ()
  | Some id -> (
      match Hashtbl.find_opt t.txns id with
      | None ->
          (* A commit with no declarations still fences. *)
          if t.group <= 1 then
            record_unit_pred t ("t" ^ id)
              { u_undo = cost_zero; u_data = cost_zero; u_segmeta = cost_zero; u_fence = fence_cost t }
          else t.staged <- t.staged @ [ (id, fresh_txn ()) ]
      | Some x ->
          Hashtbl.remove t.txns id;
          if t.group <= 1 then begin
            record_unit_pred t ("t" ^ id)
              {
                u_undo = x.x_undo;
                u_data = data_cost t x;
                u_segmeta = segmeta_cost t x;
                u_fence = fence_cost t;
              };
            maybe_quiesce t
          end
          else t.staged <- t.staged @ [ (id, x) ])

let on_abort t args =
  match List.assoc_opt "txn" args with
  | None -> ()
  | Some id ->
      if Hashtbl.mem t.txns id then begin
        Hashtbl.remove t.txns id;
        t.discarded <- t.discarded + 1
      end;
      if List.mem_assoc id t.staged then begin
        t.staged <- List.remove_assoc id t.staged;
        t.discarded <- t.discarded + 1
      end;
      (* Any packets the aborted transaction already pushed will never
         be fenced; drop them from the per-unit ledger so they don't
         leak into a later unit with the same key. *)
      let stale =
        Hashtbl.fold (fun (k, n) _ acc -> if k = "t" ^ id then (k, n) :: acc else acc) t.measured []
      in
      List.iter (fun kn -> Hashtbl.remove t.measured kn) stale;
      maybe_quiesce t

(* The convoy's prediction, replicated from [Perseas.flush]: the
   batch's records sorted by local slot and packed to a dense remote
   chain (adjacent local records coalesce into one chunk), the merged
   per-segment data runs, the tracking-mode segment-epoch stores, and
   the fence — every chunk widened like the engine's plan_convoy. *)
let convoy_pred t =
  let batch = List.map snd t.staged in
  let recs =
    List.concat_map (fun x -> List.rev x.x_recs) batch
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let chunks = ref [] and cur = ref None and dst = ref 0 in
  List.iter
    (fun (src_slot, flen) ->
      let span = Layout.undo_slot_packed ~off:!dst ~payload_len:flen - !dst in
      (match !cur with
      | Some (d0, s0, len) when s0 + len = src_slot -> cur := Some (d0, s0, len + span)
      | Some c ->
          chunks := c :: !chunks;
          cur := Some (!dst, src_slot, span)
      | None -> cur := Some (!dst, src_slot, span));
      dst := !dst + span)
    recs;
  (match !cur with Some c -> chunks := c :: !chunks | None -> ());
  let u_undo =
    List.fold_left
      (fun acc (dst, src, len) ->
        cost_add acc
          (write_cost t ~widen:t.opt_memcpy ~window_len:t.undo_cap ~src_off:src ~dst_off:dst ~len))
      cost_zero (List.rev !chunks)
  in
  (* Batch data runs: the union of every staged write-set, glued under
     optimized_memcpy regardless of elision (the engine always indexes
     write-sets). *)
  let merged = Hashtbl.create 8 in
  List.iter
    (fun x ->
      List.iter
        (fun (idx, iset) ->
          let cur = Option.value ~default:Iset.empty (Hashtbl.find_opt merged idx) in
          Hashtbl.replace merged idx (Iset.union cur iset))
        x.x_wset)
    batch;
  let indices = Hashtbl.fold (fun idx _ acc -> idx :: acc) merged [] |> List.sort compare in
  let u_data =
    List.fold_left
      (fun acc idx ->
        let iset = Hashtbl.find merged idx in
        let iset = if t.opt_memcpy then Iset.glue iset ~align:64 else iset in
        let window_len = Option.value ~default:max_int (List.assoc_opt idx t.seg_sizes) in
        List.fold_left
          (fun acc (off, len) ->
            cost_add acc
              (write_cost t ~widen:t.opt_memcpy ~window_len ~src_off:off ~dst_off:off ~len))
          acc (Iset.intervals iset))
      cost_zero indices
  in
  let u_segmeta =
    if not t.tracking then cost_zero
    else
      List.fold_left
        (fun acc idx ->
          cost_add acc (epoch_write_cost t ~dst_off:(Layout.table_epoch_off ~index:idx)))
        cost_zero indices
  in
  { u_undo; u_data; u_segmeta; u_fence = fence_cost t }

(* ------------------------------------------------------------------ *)
(* Packet-event accounting                                             *)

let class_of_packet ~op ~tag =
  match op with
  | "remote_undo" -> Some "undo"
  | "commit_propagate" -> Some "data"
  | "commit_segmeta" -> Some "segmeta"
  | "commit_fence" -> Some "fence"
  | "flush_convoy" -> (
      match tag with ("undo" | "data" | "segmeta" | "fence") as c -> Some c | _ -> None)
  | _ -> None

let on_packet t (e : Trace.Event.t) =
  let args = e.Trace.Event.args in
  let kind = e.Trace.Event.name in
  let len = Option.value ~default:0 (Option.bind (List.assoc_opt "len" args) int_of_string_opt) in
  let c =
    {
      pkts64 = (if kind = "pkt.full64" then 1 else 0);
      pkts16 = (if kind = "pkt.part16" then 1 else 0);
      bytes = len;
    }
  in
  let op = Option.value ~default:"" (List.assoc_opt "op" args) in
  let tag = Option.value ~default:"" (List.assoc_opt "tag" args) in
  let node = Option.bind (List.assoc_opt "node" args) int_of_string_opt in
  let dir = Option.value ~default:"" (List.assoc_opt "dir" args) in
  let key =
    match List.assoc_opt "convoy" args with
    | Some k -> Some k
    | None -> (
        match (op, List.assoc_opt "txn" args) with
        | "remote_undo", Some id -> Some ("t" ^ id)
        | _ -> None)
  in
  match (key, node, dir) with
  | Some key, Some node, "write" ->
      (* A fresh convoy key finalises the batch prediction: the
         convoy's first packet proves the flush is under way, and the
         staged set is exactly the batch it carries. *)
      if String.length key > 0 && key.[0] = 'c' && not (Hashtbl.mem t.units key) then begin
        Hashtbl.replace t.units key (convoy_pred t);
        t.staged <- [];
        maybe_quiesce t
      end;
      (match class_of_packet ~op ~tag with
      | Some cls -> class_bump t.class_meas cls c
      | None -> ());
      let sofar = Option.value ~default:cost_zero (Hashtbl.find_opt t.measured (key, node)) in
      let total = cost_add sofar c in
      Hashtbl.replace t.measured (key, node) total;
      let is_fence = op = "commit_fence" || (op = "flush_convoy" && tag = "fence") in
      if is_fence then begin
        (* The fence is the unit's last packet on this node: settle. *)
        Hashtbl.remove t.measured (key, node);
        match Hashtbl.find_opt t.units key with
        | None ->
            let d =
              { d_unit = key; d_node = node; d_class = "unit"; d_predicted = cost_zero; d_measured = total }
            in
            t.alerts <- d :: t.alerts;
            t.on_drift d
        | Some u ->
            let predicted = unit_total u in
            t.nchecked <- t.nchecked + 1;
            t.predicted_total <- cost_add t.predicted_total predicted;
            t.measured_total <- cost_add t.measured_total total;
            class_bump t.class_pred "undo" u.u_undo;
            class_bump t.class_pred "data" u.u_data;
            class_bump t.class_pred "segmeta" u.u_segmeta;
            class_bump t.class_pred "fence" u.u_fence;
            if
              abs (cost_packets total - cost_packets predicted) > t.tolerance_pkts
              || total.bytes <> predicted.bytes
            then begin
              let d =
                { d_unit = key; d_node = node; d_class = "unit"; d_predicted = predicted; d_measured = total }
              in
              t.alerts <- d :: t.alerts;
              t.on_drift d
            end
      end
  | _ ->
      (* Reads, recovery traffic, checkpoint pushes, setup: outside the
         transaction cost model, reported so windows can assert they
         saw none. *)
      t.unattributed <- cost_add t.unattributed c

let on_span t (s : Trace.Span.t) =
  if s.Trace.Span.cat = "txn" then
    match s.Trace.Span.name with
    | "set_range" -> on_set_range t s.Trace.Span.args
    | "commit" -> on_commit t s.Trace.Span.args
    | "abort" -> on_abort t s.Trace.Span.args
    | _ -> ()

let on_event t (e : Trace.Event.t) = if e.Trace.Event.cat = "sci" then on_packet t e

let sink t = Trace.Sink.observer ~on_span:(on_span t) ~on_event:(on_event t)

(* Hand-feed hooks, mirroring [Trace.Monitor] — the seeded-mutation
   tests replay corrupted streams through these. *)
let span = on_span
let event t (e : Trace.Event.t) = on_event t e

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let alerts t = List.rev t.alerts
let drift_count t = List.length t.alerts
let units_checked t = t.nchecked
let predicted_total t = t.predicted_total
let measured_total t = t.measured_total
let unattributed t = t.unattributed
let discarded t = t.discarded

let pending t =
  Hashtbl.length t.txns + List.length t.staged
  + (Hashtbl.fold (fun _ _ n -> n + 1) t.measured 0)

let classes t =
  List.map
    (fun cls ->
      ( cls,
        Option.value ~default:cost_zero (Hashtbl.find_opt t.class_pred cls),
        Option.value ~default:cost_zero (Hashtbl.find_opt t.class_meas cls) ))
    [ "undo"; "data"; "segmeta"; "fence" ]
