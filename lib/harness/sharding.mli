(** Harness for the sharded multi-primary cluster ({!Perseas.Shard}).

    A {!bed} holds one full replicated PERSEAS world per shard —
    primary, mirrors and a cold spare on distinct power supplies, each
    shard on its own cluster and virtual clock — behind one router.
    The debit-credit loader splits the bank across the shards;
    {!run_cell} measures one point of the sharding-scaling experiment;
    {!failover} is the shard extension of the zero-committed-data-loss
    oracle. *)

open Sim

type shard_bed = {
  sb_clock : Clock.t;
  sb_cluster : Cluster.t;
  sb_servers : Netram.Server.t list;
  sb_spare : int;  (** Node id of the cold spare (own power supply). *)
}

type bed = { router : Perseas.Shard.t; shard_beds : shard_bed array; mirrors : int }

val make_bed :
  ?config:Perseas.config ->
  ?strategy:Cluster.Shard_map.strategy ->
  ?interval:Time.t ->
  ?dram_mb:int ->
  ?mirrors:int ->
  shards:int ->
  unit ->
  bed
(** Build [shards] independent replicated worlds (default one mirror,
    64 MB DRAM per node) and route them through one
    {!Perseas.Shard.t}.  Clocks are per shard — commits on one shard
    leave the others' virtual time untouched, which is where the
    scaling comes from. *)

val total_packets : bed -> int
(** Sum of 64- and 16-byte packets over every shard's NIC. *)

val reset_packets : bed -> unit

(** {1 Debit-credit over the shards} *)

module W : module type of Workloads.Debit_credit.Make (Perseas.Engine)

type loaded = {
  l_bed : bed;
  l_dbs : W.db array;
  l_rngs : Rng.t array;
  l_route : Rng.t;
  l_clients : int;
}

val load_debit_credit :
  ?params:Workloads.Debit_credit.params -> ?clients:int -> ?seed:int -> bed -> loaded
(** Set up one debit-credit bank per shard ([params] each, default
    {!Workloads.Debit_credit.small_params}) with split rng streams so
    shard schedules are independent and deterministic. *)

val run : loaded -> total:int -> ?cross_every:int -> unit -> Multi_client.sharded_stats
(** Drive [l_clients] clients per shard until [total] single-shard
    commits land, injecting one two-shard transfer per [cross_every]
    single-shard commits (0 = never); quiesced and fenced on return. *)

val consistent : loaded -> bool
(** Every shard's TPC-B consistency condition. *)

val checksum : loaded -> shard:int -> int64

val adopt : loaded -> shard:int -> Perseas.t -> unit
(** Point the router and the workload at a freshly recovered engine
    for [shard] (rebinds the four table segments by name). *)

(** {1 Measured scaling cell} *)

type cell = {
  c_shards : int;
  c_cross_per_100 : int;  (** Cross-shard transfers per 100 singles. *)
  c_committed : int;
  c_cross : int;
  c_conflicts : int;
  c_switches : int;
  c_elapsed_us : float;
  c_tps : float;  (** Aggregate commits/s over the frontier clock. *)
  c_pkts_per_txn : float;
}

val run_cell :
  ?config:Perseas.config ->
  ?interval:Time.t ->
  ?mirrors:int ->
  ?clients:int ->
  ?dram_mb:int ->
  ?params:Workloads.Debit_credit.params ->
  ?seed:int ->
  ?warmup:int ->
  ?total:int ->
  shards:int ->
  cross_per_100:int ->
  unit ->
  cell
(** One point of the sharding experiment: build a fresh bed (default
    group commit 8, one mirror), warm it up, then measure [total]
    single-shard commits plus the implied cross-shard mix.  Aggregate
    tps is measured on the frontier clock ({!Perseas.Shard.now}), so
    shard parallelism shows up as wall-clock speedup.  Fails if any
    shard ends inconsistent. *)

(** {1 Shard failover oracle} *)

type failover = {
  f_before : Multi_client.sharded_stats;
  f_after : Multi_client.sharded_stats;
  f_data_preserved : bool;
      (** The victim shard's recovered image equals its committed
          image — the zero-committed-data-loss claim. *)
  f_consistent : bool;
  f_alerts : int;  (** {!Trace.Monitor} alerts across all shards. *)
}

val failover :
  ?shards:int ->
  ?mirrors:int ->
  ?victim:int ->
  ?clients:int ->
  ?traffic:int ->
  ?cross_every:int ->
  ?params:Workloads.Debit_credit.params ->
  ?seed:int ->
  unit ->
  failover
(** Run mixed traffic with a protocol monitor on every shard, crash
    the [victim] shard's primary, rebuild it on that shard's spare via
    {!Perseas.recover_replicated}, {!adopt} it, and run more traffic.
    The oracle passes when committed data survived byte-for-byte, the
    TPC-B invariant held before and after, and no monitor raised. *)
