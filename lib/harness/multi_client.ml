(* A population of simulated clients multiplexed over one PERSEAS
   instance.  The engine is single-threaded (the simulation is
   deterministic virtual time), so "concurrency" means interleaving:
   the driver round-robins the clients, each turn advancing one client
   by one transaction phase — begin+declare on one turn, apply+commit
   on a later one — so up to [clients] transactions are genuinely in
   flight between turns, which is exactly the window group commit
   batches over and conflict detection polices. *)

type stats = { committed : int; conflicts : int; attempts : int }

let client_name i = Printf.sprintf "client-%d" i

(* ------------------------------------------------------------------ *)
(* Retry helper: the whole transaction in one call, retried on loss. *)

let with_retries ?(max_attempts = 16) t ~client body =
  let conflicts = ref 0 in
  let rec go attempt =
    let txn = Perseas.begin_transaction ~client t in
    match
      body txn;
      Perseas.commit txn
    with
    | () -> !conflicts
    | exception Perseas.Conflict _ when attempt < max_attempts ->
        (* The loser is already rolled back and closed; losing to an
           older transaction means re-running the body is the cheap
           side of the wound-wait coin. *)
        incr conflicts;
        go (attempt + 1)
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Round-robin phase driver *)

type 'a spec = {
  prepare : int -> 'a;
  declare : Perseas.txn -> 'a -> unit;
  apply : 'a -> unit;
}

type 'a slot = Idle | Retry of 'a | Open of Perseas.txn * 'a

let run t ~clients ~total (spec : 'a spec) =
  if clients < 1 then invalid_arg "Multi_client.run: clients must be positive";
  let state = Array.make clients Idle in
  let committed = ref 0 and conflicts = ref 0 and attempts = ref 0 in
  let i = ref 0 in
  (* A client whose begin+declare succeeded leaves its transaction open
     across the other clients' turns; it applies and commits when its
     turn comes round again.  A conflicted client retries the same
     drawn work next turn — by then the older holder has had a full
     round to commit, which is all the backoff a round-robin world
     needs. *)
  while !committed < total do
    let c = !i mod clients in
    i := !i + 1;
    (match state.(c) with
    | Idle | Retry _ -> (
        let d = match state.(c) with Retry d -> d | _ -> spec.prepare c in
        incr attempts;
        let txn = Perseas.begin_transaction ~client:(client_name c) t in
        match spec.declare txn d with
        | () -> state.(c) <- Open (txn, d)
        | exception Perseas.Conflict _ ->
            incr conflicts;
            state.(c) <- Retry d)
    | Open (txn, d) -> (
        match Perseas.validate txn with
        | () ->
            spec.apply d;
            Perseas.commit txn;
            incr committed;
            state.(c) <- Idle
        | exception Perseas.Conflict _ ->
            (* An older peer doomed us while we were parked; the
               rollback already happened at doom time. *)
            incr conflicts;
            state.(c) <- Retry d))
  done;
  (* Drain: abort parked transactions and flush the staged tail so the
     database quiesces at a committed state. *)
  Array.iter (function Open (txn, _) -> (try Perseas.abort txn with Perseas.Conflict _ -> ()) | _ -> ()) state;
  Perseas.flush t;
  { committed = !committed; conflicts = !conflicts; attempts = !attempts }
