(* A population of simulated clients multiplexed over one PERSEAS
   instance.  The engine is single-threaded (the simulation is
   deterministic virtual time), so "concurrency" means interleaving:
   the driver round-robins the clients, each turn advancing one client
   by one transaction phase — begin+declare on one turn, apply+commit
   on a later one — so up to [clients] transactions are genuinely in
   flight between turns, which is exactly the window group commit
   batches over and conflict detection polices. *)

type stats = { committed : int; conflicts : int; attempts : int }

let client_name i = Printf.sprintf "client-%d" i

(* ------------------------------------------------------------------ *)
(* Retry helper: the whole transaction in one call, retried on loss. *)

let with_retries ?(max_attempts = 16) t ~client body =
  let conflicts = ref 0 in
  let rec go attempt =
    let txn = Perseas.begin_transaction ~client t in
    match
      body txn;
      Perseas.commit txn
    with
    | () -> !conflicts
    | exception Perseas.Conflict _ when attempt < max_attempts ->
        (* The loser is already rolled back and closed; losing to an
           older transaction means re-running the body is the cheap
           side of the wound-wait coin. *)
        incr conflicts;
        go (attempt + 1)
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Round-robin phase driver *)

type 'a spec = {
  prepare : int -> 'a;
  declare : Perseas.txn -> 'a -> unit;
  apply : 'a -> unit;
}

type 'a slot = Idle | Retry of 'a | Open of Perseas.txn * 'a

let run t ~clients ~total (spec : 'a spec) =
  if clients < 1 then invalid_arg "Multi_client.run: clients must be positive";
  let state = Array.make clients Idle in
  let committed = ref 0 and conflicts = ref 0 and attempts = ref 0 in
  let i = ref 0 in
  (* A client whose begin+declare succeeded leaves its transaction open
     across the other clients' turns; it applies and commits when its
     turn comes round again.  A conflicted client retries the same
     drawn work next turn — by then the older holder has had a full
     round to commit, which is all the backoff a round-robin world
     needs. *)
  while !committed < total do
    let c = !i mod clients in
    i := !i + 1;
    (match state.(c) with
    | Idle | Retry _ -> (
        let d = match state.(c) with Retry d -> d | _ -> spec.prepare c in
        incr attempts;
        let txn = Perseas.begin_transaction ~client:(client_name c) t in
        match spec.declare txn d with
        | () -> state.(c) <- Open (txn, d)
        | exception Perseas.Conflict _ ->
            incr conflicts;
            state.(c) <- Retry d)
    | Open (txn, d) -> (
        match Perseas.validate txn with
        | () ->
            spec.apply d;
            Perseas.commit txn;
            incr committed;
            state.(c) <- Idle
        | exception Perseas.Conflict _ ->
            (* An older peer doomed us while we were parked; the
               rollback already happened at doom time. *)
            incr conflicts;
            state.(c) <- Retry d))
  done;
  (* Drain: abort parked transactions and flush the staged tail so the
     database quiesces at a committed state. *)
  Array.iter (function Open (txn, _) -> (try Perseas.abort txn with Perseas.Conflict _ -> ()) | _ ->
()) state;
  Perseas.flush t;
  { committed = !committed; conflicts = !conflicts; attempts = !attempts }

(* ------------------------------------------------------------------ *)
(* Per-shard round-robin driver for the sharded router *)

type sharded_stats = {
  ss_committed : int; (* single-shard commits, all shards *)
  ss_cross_committed : int;
  ss_conflicts : int;
  ss_attempts : int;
  ss_switches : int; (* single-master phases entered during the run *)
}

type 'a shard_spec = {
  sh_prepare : shard:int -> client:int -> 'a;
  sh_declare : shard:int -> Perseas.txn -> 'a -> unit;
  sh_apply : shard:int -> 'a -> unit;
}

(* The single-engine driver above, replicated per shard: each shard
   runs [clients] interleaved clients against its own primary (its own
   clock — one turn on shard 0 does not advance shard 1's time, so the
   shards genuinely overlap in virtual time), while cross-shard
   transactions are queued through the router and drained at its
   single-master phases.  One round = one client turn on every shard;
   the router ticks once per round, so a due phase switch lands at a
   turn boundary exactly like the group-commit convoys it fences. *)
let run_sharded router ~clients ~total ?(cross_every = 0) ?(cross = fun () -> []) (spec : 'a shard_spec)
    =
  if clients < 1 then invalid_arg "Multi_client.run_sharded: clients must be positive";
  let shards = Perseas.Shard.shards router in
  let state = Array.init shards (fun _ -> Array.make clients Idle) in
  let turn_of = Array.make shards 0 in
  let committed = ref 0 and conflicts = ref 0 and attempts = ref 0 in
  let injected = ref 0 in
  let switches0 = Cluster.Phase.single_master_phases (Perseas.Shard.phase router) in
  let inject_cross () =
    match cross () with
    | [] -> ()
    | pieces ->
        let involved = List.map fst pieces in
        ignore
          (Perseas.Shard.submit_cross router ~shards:involved (fun get ->
               List.iter
                 (fun (sid, d) ->
                   let _db, txn = get sid in
                   spec.sh_declare ~shard:sid txn d)
                 pieces;
               List.iter (fun (sid, d) -> spec.sh_apply ~shard:sid d) pieces))
  in
  let turn s =
    let t = Perseas.Shard.db router s in
    let slots = state.(s) in
    let c = turn_of.(s) mod clients in
    turn_of.(s) <- turn_of.(s) + 1;
    match slots.(c) with
    | Idle | Retry _ -> (
        let d =
          match slots.(c) with Retry d -> d | _ -> spec.sh_prepare ~shard:s ~client:c
        in
        incr attempts;
        let txn = Perseas.begin_transaction ~client:(client_name c) t in
        match spec.sh_declare ~shard:s txn d with
        | () -> slots.(c) <- Open (txn, d)
        | exception Perseas.Conflict _ ->
            incr conflicts;
            slots.(c) <- Retry d)
    | Open (txn, d) -> (
        match Perseas.validate txn with
        | () ->
            spec.sh_apply ~shard:s d;
            Perseas.commit txn;
            incr committed;
            slots.(c) <- Idle
        | exception Perseas.Conflict _ ->
            incr conflicts;
            slots.(c) <- Retry d)
  in
  while !committed < total do
    for s = 0 to shards - 1 do
      turn s
    done;
    if cross_every > 0 then
      while !committed / cross_every > !injected do
        incr injected;
        inject_cross ()
      done;
    Perseas.Shard.tick router
  done;
  (* Quiesce: abort parked transactions everywhere, then force the
     remaining cross-shard backlog through final single-master phases
     (nothing is open any more, so nothing can conflict). *)
  Array.iter
    (Array.iter (function
      | Open (txn, _) -> ( try Perseas.abort txn with Perseas.Conflict _ -> ())
      | _ -> ()))
    state;
  let guard = ref 0 in
  while Perseas.Shard.backlog router > 0 do
    incr guard;
    if !guard > 4 then failwith "Multi_client.run_sharded: cross-shard backlog failed to drain";
    ignore (Perseas.Shard.drain router)
  done;
  Perseas.Shard.fence router;
  {
    ss_committed = !committed;
    ss_cross_committed = (Perseas.Shard.stats router).Perseas.Shard.cross_committed;
    ss_conflicts = !conflicts;
    ss_attempts = !attempts;
    ss_switches =
      Cluster.Phase.single_master_phases (Perseas.Shard.phase router) - switches0;
  }
