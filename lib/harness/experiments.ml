open Sim

let results_dir = "results"
let csv_path name = Filename.concat results_dir (name ^ ".csv")

let kb n = n * 1024
let mb n = n * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Workload drivers (functor applications over packed instances)       *)

(* The functor-applied [db] type cannot leave this function's scope,
   so callers receive a monomorphic measurement closure instead. *)
let with_synthetic (module I : Testbed.INSTANCE) ~db_size k =
  let module S = Workloads.Synthetic.Make (I.E) in
  let db = S.setup I.engine ~db_size in
  k (fun ~tx_size ~warmup ~iters ->
      let rng = Rng.create (42 + tx_size) in
      Measure.run ~clock:I.clock ~finish:I.finish ~warmup ~iters (fun _ ->
          S.transaction db rng ~tx_size))

let run_debit_credit (module I : Testbed.INSTANCE) ~params ~warmup ~iters =
  let module W = Workloads.Debit_credit.Make (I.E) in
  let rng = Rng.create 7 in
  let db = W.setup I.engine ~params in
  let result =
    Measure.run ~clock:I.clock ~finish:I.finish ~warmup ~iters (fun _ -> W.transaction db rng)
  in
  assert (W.consistent db);
  result

let run_order_entry (module I : Testbed.INSTANCE) ~params ~warmup ~iters =
  let module W = Workloads.Order_entry.Make (I.E) in
  let rng = Rng.create 11 in
  let db = W.setup I.engine ~params in
  let result =
    Measure.run ~clock:I.clock ~finish:I.finish ~warmup ~iters (fun _ -> W.transaction db rng)
  in
  assert (W.consistent db);
  result

(* ------------------------------------------------------------------ *)
(* F5: SCI remote write latency vs data size                           *)

let fig5 () =
  let p = Sci.Params.default in
  (* Two series, as the figure's "WordOffsetN" naming implies: stores
     starting at the first word of a buffer, and stores starting at the
     last word (so every size crosses a buffer boundary). *)
  let rows =
    List.init 50 (fun i ->
        let size = 4 * (i + 1) in
        let pkts = Sci.Packet.of_range p ~off:0 ~len:size in
        let lat0 = Sci.Model.write_range p ~off:0 ~len:size () in
        let lat15 = Sci.Model.write_range p ~off:60 ~len:size () in
        [
          string_of_int size;
          string_of_int (Sci.Packet.count Sci.Packet.Full64 pkts);
          string_of_int (Sci.Packet.count Sci.Packet.Part16 pkts);
          Table.fmt_us (Time.to_us lat0);
          Table.fmt_us (Time.to_us lat15);
        ])
  in
  let header =
    [ "size (B)"; "64B pkts"; "16B pkts"; "offset 0 (us)"; "offset 60 (us)" ]
  in
  Table.print ~title:"Figure 5: SCI remote write latency (by word offset)" ~header rows;
  Printf.printf "(4-byte store: %.2f us, paper: 2.7 us)\n"
    (Time.to_us (Sci.Model.write_range p ~off:0 ~len:4 ()));
  Table.save_csv ~path:(csv_path "fig5") ~header rows

(* ------------------------------------------------------------------ *)
(* F6: PERSEAS transaction overhead vs transaction size                *)

let fig6_sizes = [ 4; 16; 64; 256; 1024; 4096; 16384; 65536; 262144; 1048576 ]

let fig6 () =
  let inst = Testbed.perseas_instance () in
  let rows =
    with_synthetic inst ~db_size:(mb 8) (fun run_at ->
        List.map
          (fun tx_size ->
            let iters = max 30 (min 2000 (2_000_000 / tx_size)) in
            let r = run_at ~tx_size ~warmup:5 ~iters in
            [ string_of_int tx_size; Table.fmt_us r.Measure.mean_us; Table.fmt_tps r.Measure.tps ])
          fig6_sizes)
  in
  let header = [ "tx size (B)"; "overhead (us)"; "tps" ] in
  Table.print ~title:"Figure 6: PERSEAS transaction overhead vs size (8 MB database)" ~header rows;
  Table.save_csv ~path:(csv_path "fig6") ~header rows

(* ------------------------------------------------------------------ *)
(* T1: debit-credit and order-entry on PERSEAS                         *)

let table1 () =
  let dc =
    run_debit_credit (Testbed.perseas_instance ())
      ~params:Workloads.Debit_credit.default_params ~warmup:1000 ~iters:20_000
  in
  let oe =
    run_order_entry (Testbed.perseas_instance ())
      ~params:Workloads.Order_entry.default_params ~warmup:1000 ~iters:20_000
  in
  let header = [ "benchmark"; "tps"; "mean (us)"; "p99 (us)" ] in
  let rows =
    [
      [ "debit-credit"; Table.fmt_tps dc.tps; Table.fmt_us dc.mean_us; Table.fmt_us dc.p99_us ];
      [ "order-entry"; Table.fmt_tps oe.tps; Table.fmt_us oe.mean_us; Table.fmt_us oe.p99_us ];
    ]
  in
  Table.print ~title:"Table 1: PERSEAS throughput (paper: 22k / 10k tps)" ~header rows;
  Table.save_csv ~path:(csv_path "table1") ~header rows

(* ------------------------------------------------------------------ *)
(* C1: small synthetic transactions across engines                     *)

let compare_synthetic () =
  let results =
    List.map
      (fun inst ->
        let r =
          with_synthetic inst ~db_size:(mb 1) (fun run_at -> run_at ~tx_size:4 ~warmup:200 ~iters:5000)
        in
        (Testbed.label inst, r))
      (Testbed.all_instances ())
  in
  let perseas_tps =
    match List.assoc_opt "PERSEAS" results with Some r -> r.Measure.tps | None -> nan
  in
  let header = [ "engine"; "tps"; "mean (us)"; "PERSEAS speedup" ] in
  let rows =
    List.map
      (fun (label, (r : Measure.result)) ->
        [
          label;
          Table.fmt_tps r.tps;
          Table.fmt_us r.mean_us;
          (if label = "PERSEAS" then "1.0x" else Table.fmt_ratio (perseas_tps /. r.tps));
        ])
      results
  in
  Table.print
    ~title:"Comparison: 4-byte synthetic transactions (paper: PERSEAS orders of magnitude over RVM)"
    ~header rows;
  Table.save_csv ~path:(csv_path "compare_synthetic") ~header rows

(* ------------------------------------------------------------------ *)
(* C2: debit-credit and order-entry across engines                     *)

let compare_bench () =
  let bench name runner =
    let results =
      List.map
        (fun inst ->
          let iters = if Testbed.label inst = "RVM" then 2000 else 10_000 in
          let r = runner inst ~warmup:(iters / 10) ~iters in
          (Testbed.label inst, r))
        (Testbed.all_instances ())
    in
    let header = [ "engine"; "tps"; "mean (us)" ] in
    let rows =
      List.map
        (fun (label, (r : Measure.result)) ->
          [ label; Table.fmt_tps r.tps; Table.fmt_us r.mean_us ])
        results
    in
    Table.print ~title:(Printf.sprintf "Comparison: %s across engines" name) ~header rows;
    Table.save_csv ~path:(csv_path ("compare_" ^ name)) ~header rows
  in
  bench "debit-credit" (fun inst ~warmup ~iters ->
      run_debit_credit inst ~params:Workloads.Debit_credit.default_params ~warmup ~iters);
  bench "order-entry" (fun inst ~warmup ~iters ->
      run_order_entry inst ~params:Workloads.Order_entry.default_params ~warmup ~iters)

(* ------------------------------------------------------------------ *)
(* S1: throughput vs database size                                     *)

let db_size_sweep () =
  let header = [ "accounts"; "db size (MB)"; "tps" ] in
  let rows =
    List.map
      (fun accounts ->
        let params = { Workloads.Debit_credit.default_params with accounts_per_branch = accounts } in
        let inst = Testbed.perseas_instance ~dram_mb:192 () in
        let r = run_debit_credit inst ~params ~warmup:500 ~iters:10_000 in
        let db_mb =
          float_of_int (accounts * Workloads.Debit_credit.record_size) /. 1048576.
        in
        [ Table.fmt_int accounts; Printf.sprintf "%.1f" db_mb; Table.fmt_tps r.tps ])
      [ 1_000; 10_000; 100_000; 400_000 ]
  in
  Table.print
    ~title:"Database size sweep: debit-credit on PERSEAS (paper: flat while DB < memory)" ~header
    rows;
  Table.save_csv ~path:(csv_path "db_size_sweep") ~header rows

(* ------------------------------------------------------------------ *)
(* R1: crash mid-commit, recover on spare node and rebooted primary    *)

let recovery () =
  let scenario ~db_size ~recover_on =
    let bed = Testbed.perseas_bed ~dram_mb:128 () in
    let module S = Workloads.Synthetic.Make (Perseas.Engine) in
    let rng = Rng.create 23 in
    let db = S.setup bed.perseas ~db_size in
    for _ = 1 to 50 do
      S.transaction db rng ~tx_size:256
    done;
    (* Crash in the middle of a committing transaction's packet stream. *)
    let seg = Option.get (Perseas.segment bed.perseas "synthetic") in
    let txn = Perseas.begin_transaction bed.perseas in
    Perseas.set_range txn seg ~off:0 ~len:(kb 16);
    Perseas.write bed.perseas seg ~off:0 (Bytes.make (kb 16) 'X');
    let total = Perseas.commit_packets txn in
    let cut = total / 2 in
    let sent = ref 0 in
    let exception Crash in
    Perseas.set_packet_hook bed.perseas
      (Some (fun () -> if !sent >= cut then raise Crash else incr sent));
    (match Perseas.commit txn with () -> assert false | exception Crash -> ());
    ignore (Cluster.crash_node bed.cluster 0 Cluster.Failure.Software_error);
    let local =
      match recover_on with
      | `Spare -> 2
      | `Primary ->
          Cluster.restart_node bed.cluster 0;
          0
    in
    let t0 = Clock.now bed.clock in
    let recovered = Perseas.recover ~cluster:bed.cluster ~local ~server:bed.server () in
    let elapsed = Clock.now bed.clock - t0 in
    let seg' = Option.get (Perseas.segment recovered "synthetic") in
    assert (Perseas.checksum recovered seg' = Perseas.mirror_checksum recovered seg');
    elapsed
  in
  let header = [ "db size (MB)"; "recover on"; "recovery time (ms)" ] in
  let rows =
    List.concat_map
      (fun size_mb ->
        List.map
          (fun (where, where_label) ->
            let elapsed = scenario ~db_size:(mb size_mb) ~recover_on:where in
            [ string_of_int size_mb; where_label; Table.fmt_ms (Time.to_ms elapsed) ])
          [ (`Spare, "spare node"); (`Primary, "rebooted primary") ])
      [ 1; 4; 16 ]
  in
  Table.print
    ~title:"Recovery: crash mid-commit, rebuild from the mirror (atomicity checked)" ~header rows;
  Table.save_csv ~path:(csv_path "recovery") ~header rows

(* ------------------------------------------------------------------ *)
(* R10: fuzzy checkpoints keep recovery time flat vs database size     *)

let checkpoint () =
  (* Primary (0), mirror (1), checkpoint target (2), spare (3).  Every
     segment is dirtied before the checkpoint; after the cut only one
     segment is touched, so the post-checkpoint recovery work is
     constant while the database grows.  Without a checkpoint the whole
     database streams over from the mirror. *)
  let run ~nsegs ~mode =
    let clock = Clock.create () in
    let specs =
      List.mapi
        (fun i n -> Cluster.spec ~dram_size:(mb 64) ~power_supply:i n)
        [ "primary"; "mirror"; "ckpt"; "spare" ]
    in
    let cluster = Cluster.create ~clock specs in
    let server = Netram.Server.create (Cluster.node cluster 1) in
    let client = Netram.Client.create ~cluster ~local:0 ~server in
    let t = Perseas.init_replicated [ client ] in
    let seg_size = kb 128 in
    let segs =
      List.init nsegs (fun i ->
          let seg = Perseas.malloc t ~name:(Printf.sprintf "seg%d" i) ~size:seg_size in
          Perseas.write t seg ~off:0
            (Bytes.init seg_size (fun j -> Char.chr ((i + j) land 0xff)));
          seg)
    in
    Perseas.init_remote_db t;
    let ckpt_server = Netram.Server.create (Cluster.node cluster 2) in
    let touch seg ~off fill =
      let txn = Perseas.begin_transaction t in
      Perseas.set_range txn seg ~off ~len:256;
      Perseas.write t seg ~off (Bytes.make 256 fill);
      Perseas.commit txn
    in
    List.iteri (fun i seg -> touch seg ~off:(64 * (i mod 16)) 'a') segs;
    if mode <> `Off then begin
      Perseas.Checkpoint.set_ram_target t ~server:ckpt_server;
      ignore (Perseas.Checkpoint.take t)
    end;
    (* A short, size-independent tail of commits after the cut. *)
    touch (List.hd segs) ~off:4096 'z';
    let committed =
      List.map (fun s -> (Perseas.segment_name s, Perseas.checksum t s)) segs
    in
    ignore (Cluster.crash_node cluster 0 Cluster.Failure.Software_error);
    let local, checkpoint, helpers =
      match mode with
      | `Off -> (3, None, [])
      | `Off_helper -> (3, None, [ 2 ])
      | `On -> (2, Some (Perseas.Ram_source ckpt_server), [])
    in
    let t0 = Clock.now clock in
    let t2 =
      Perseas.recover_replicated ?checkpoint ~helpers ~cluster ~local ~servers:[ server ] ()
    in
    let elapsed = Clock.now clock - t0 in
    (* Zero committed-data loss however the image was rebuilt. *)
    List.iter
      (fun (name, sum) ->
        let s = Option.get (Perseas.segment t2 name) in
        assert (Perseas.checksum t2 s = sum))
      committed;
    assert (Perseas.verify_mirrors t2 = []);
    elapsed
  in
  let sizes = [ 4; 8; 16; 32 ] in
  let modes = [ `Off; `Off_helper; `On ] in
  let times =
    List.map (fun nsegs -> (nsegs, List.map (fun mode -> run ~nsegs ~mode) modes)) sizes
  in
  let header =
    [ "segments"; "db (KB)"; "off (us)"; "off + helper (us)"; "checkpoint (us)" ]
  in
  let rows =
    List.map
      (fun (nsegs, ts) ->
        string_of_int nsegs :: string_of_int (nsegs * 128)
        :: List.map (fun e -> Table.fmt_us (Time.to_us e)) ts)
      times
  in
  Table.print
    ~title:
      "Checkpointed recovery: rebuild time vs database size (flat with a checkpoint, linear \
       without)"
    ~header rows;
  Table.save_csv ~path:(csv_path "checkpoint") ~header rows;
  (* The acceptance bar: smallest -> largest database, checkpointed
     recovery grows by at most 1.5x while plain mirror recovery at
     least doubles. *)
  let column i =
    let first = List.nth (snd (List.hd times)) i in
    let last = List.nth (snd (List.nth times (List.length times - 1))) i in
    float_of_int last /. float_of_int first
  in
  let off_ratio = column 0 and on_ratio = column 2 in
  Printf.printf
    "recovery time smallest -> largest: %.2fx without a checkpoint, %.2fx with (bar: >= 2.0 vs \
     <= 1.5)\n"
    off_ratio on_ratio;
  assert (off_ratio >= 2.0);
  assert (on_ratio <= 1.5)

(* ------------------------------------------------------------------ *)
(* A1: per-transaction copy and I/O counts                             *)

let copy_counts () =
  let iters = 1000 in
  let header =
    [ "engine"; "local copy B/txn"; "remote pkts/txn"; "remote B/txn"; "disk writes/txn" ]
  in
  let perseas_row =
    let bed = Testbed.perseas_bed () in
    let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
    let rng = Rng.create 7 in
    let db = W.setup bed.perseas ~params:Workloads.Debit_credit.small_params in
    let nic = Cluster.nic bed.cluster in
    Sci.Nic.reset_counters nic;
    let stats0 = Perseas.stats bed.perseas in
    for _ = 1 to iters do
      W.transaction db rng
    done;
    let stats1 = Perseas.stats bed.perseas in
    let c = Sci.Nic.counters nic in
    let per x = Printf.sprintf "%.1f" (float_of_int x /. float_of_int iters) in
    [
      "PERSEAS";
      per (stats1.local_copy_bytes - stats0.local_copy_bytes);
      per (c.packets64 + c.packets16);
      per c.bytes_written;
      "0.0";
    ]
  in
  let baseline_row label make_instance =
    let (module I : Testbed.INSTANCE), device = make_instance () in
    let module W = Workloads.Debit_credit.Make (I.E) in
    let rng = Rng.create 7 in
    let db = W.setup I.engine ~params:Workloads.Debit_credit.small_params in
    let writes0 = Disk.Device.writes_performed device in
    for _ = 1 to iters do
      W.transaction db rng
    done;
    I.finish ();
    let writes1 = Disk.Device.writes_performed device in
    let per x = Printf.sprintf "%.1f" (float_of_int x /. float_of_int iters) in
    [ label; "-"; "0.0"; "0.0"; per (writes1 - writes0) ]
  in
  let rvm_with_device ~rio () =
    let clock = Clock.create () in
    let cluster = Cluster.create ~clock [ Cluster.spec "host" ] in
    let node = Cluster.node cluster 0 in
    let backend =
      if rio then Disk.Device.Rio { Disk.Device.default_rio with ups = true }
      else Disk.Device.Magnetic Disk.Device.default_geometry
    in
    let device = Disk.Device.create ~clock ~backend ~capacity:(mb 64) in
    let engine = Baselines.Rvm.create ~node ~device () in
    ( (module struct
        module E = Baselines.Rvm.Engine

        let engine = engine
        let clock = clock
        let label = Baselines.Rvm.name_for device
        let finish () = Baselines.Rvm.flush engine
      end : Testbed.INSTANCE),
      device )
  in
  let vista_with_device () =
    let clock = Clock.create () in
    let cluster = Cluster.create ~clock [ Cluster.spec "host" ] in
    let node = Cluster.node cluster 0 in
    let device =
      Disk.Device.create ~clock
        ~backend:(Disk.Device.Rio { Disk.Device.default_rio with ups = true })
        ~capacity:(mb 64)
    in
    let engine = Baselines.Vista.create ~node ~device () in
    ( (module struct
        module E = Baselines.Vista.Engine

        let engine = engine
        let clock = clock
        let label = "Vista"
        let finish () = ()
      end : Testbed.INSTANCE),
      device )
  in
  let rows =
    [
      perseas_row;
      baseline_row "RVM" (rvm_with_device ~rio:false);
      baseline_row "RVM-Rio" (rvm_with_device ~rio:true);
      baseline_row "Vista" vista_with_device;
    ]
  in
  Table.print
    ~title:
      "Copy counts per debit-credit transaction (Fig 2 vs Fig 3: PERSEAS does memory copies only)"
    ~header rows;
  Table.save_csv ~path:(csv_path "copy_counts") ~header rows

(* ------------------------------------------------------------------ *)
(* A2: sci_memcpy 64-byte-alignment ablation                           *)

let ablation_memcpy () =
  let measure ~optimized tx_size =
    let config = { Perseas.default_config with optimized_memcpy = optimized } in
    let inst = Testbed.perseas_instance ~config () in
    let r = with_synthetic inst ~db_size:(mb 4) (fun run_at -> run_at ~tx_size ~warmup:20 ~iters:500) in
    r.Measure.mean_us
  in
  let header = [ "tx size (B)"; "optimized (us)"; "naive (us)"; "speedup" ] in
  let rows =
    List.map
      (fun size ->
        let opt = measure ~optimized:true size in
        let naive = measure ~optimized:false size in
        [
          string_of_int size;
          Table.fmt_us opt;
          Table.fmt_us naive;
          Table.fmt_ratio (naive /. opt);
        ])
      [ 64; 256; 1024; 4096; 65536 ]
  in
  Table.print ~title:"Ablation: sci_memcpy 64-byte-aligned region copies (section 4)" ~header rows;
  Table.save_csv ~path:(csv_path "ablation_memcpy") ~header rows

(* ------------------------------------------------------------------ *)
(* R8: redundancy elision — first-write-only undo, coalesced commit    *)

let elision () =
  let warmup = 200 and iters = 2000 in
  let txns = float_of_int (warmup + iters) in
  (* Per-run harness: a fresh cluster per (workload, mode) cell, NIC
     counters reset after setup so packets/txn covers exactly the
     warmup + measured transactions. *)
  let run ~elide workload =
    let config = { Perseas.default_config with redundancy_elision = elide } in
    let bed = Testbed.perseas_bed ~config () in
    let inst : Testbed.instance =
      (module struct
        module E = Perseas.Engine

        let engine = bed.Testbed.perseas
        let clock = bed.Testbed.clock
        let label = if elide then "elided" else "naive"
        let finish () = ()
      end)
    in
    let nic = Cluster.nic bed.Testbed.cluster in
    let r = workload inst ~reset:(fun () -> Sci.Nic.reset_counters nic) in
    let c = Sci.Nic.counters nic in
    let st = Perseas.stats bed.Testbed.perseas in
    let pkts = float_of_int (c.Sci.Nic.packets64 + c.Sci.Nic.packets16) /. txns in
    (r, pkts, st)
  in
  let overlap_mix (module I : Testbed.INSTANCE) ~reset =
    let module S = Workloads.Synthetic.Make (I.E) in
    let db = S.setup I.engine ~db_size:(mb 1) in
    let rng = Rng.create 97 in
    reset ();
    Measure.run ~clock:I.clock ~finish:I.finish ~warmup ~iters (fun _ ->
        S.overlap_transaction db rng ~pieces:12 ~piece_len:64 ~window:512)
  in
  let order_mix (module I : Testbed.INSTANCE) ~reset =
    let module W = Workloads.Order_entry.Make (I.E) in
    let db = W.setup I.engine ~params:Workloads.Order_entry.default_params in
    let rng = Rng.create 11 in
    reset ();
    let r =
      Measure.run ~clock:I.clock ~finish:I.finish ~warmup ~iters (fun _ -> W.transaction db rng)
    in
    assert (W.consistent db);
    r
  in
  let cell workload name ~elide =
    let r, pkts, st = run ~elide workload in
    let per x = float_of_int x /. txns in
    ( [
        name;
        (if elide then "elided" else "naive");
        Printf.sprintf "%.2f" pkts;
        Printf.sprintf "%.1f" (per st.Perseas.undo_bytes_logged);
        Printf.sprintf "%.1f" (per st.Perseas.elided_undo_bytes);
        Printf.sprintf "%.1f" (per st.Perseas.commit_bytes_saved);
        Table.fmt_us r.Measure.mean_us;
        Table.fmt_tps r.Measure.tps;
      ],
      pkts,
      st.Perseas.undo_bytes_logged )
  in
  let rows, verdicts =
    List.split
      (List.map
         (fun (name, workload) ->
           let naive_row, naive_pkts, naive_undo = cell workload name ~elide:false in
           let elided_row, elided_pkts, elided_undo = cell workload name ~elide:true in
           ( [ naive_row; elided_row ],
             (name, naive_pkts, elided_pkts, naive_undo, elided_undo) ))
         [ ("overlap-heavy", overlap_mix); ("order-entry", order_mix) ])
  in
  let rows = List.concat rows in
  let header =
    [ "workload"; "mode"; "pkts/txn"; "undo B/txn"; "elided B/txn"; "saved B/txn"; "mean (us)"; "tps" ]
  in
  Table.print ~title:"Redundancy elision: naive vs first-write-only + coalesced commit" ~header rows;
  List.iter
    (fun (name, naive_pkts, elided_pkts, naive_undo, elided_undo) ->
      Printf.printf "%s: undo bytes x%.2f, packets x%.2f\n" name
        (float_of_int elided_undo /. float_of_int naive_undo)
        (elided_pkts /. naive_pkts))
    verdicts;
  Table.save_csv ~path:(csv_path "elision") ~header rows;
  (* Acceptance: on the overlap mix, elision must save >=30% of the
     undo bytes and strictly cut the packet schedule. *)
  (match verdicts with
  | (_, naive_pkts, elided_pkts, naive_undo, elided_undo) :: _ ->
      assert (float_of_int elided_undo <= 0.7 *. float_of_int naive_undo);
      assert (elided_pkts < naive_pkts)
  | [] -> ())

(* ------------------------------------------------------------------ *)
(* A3: RVM group commit vs PERSEAS                                     *)

let group_commit () =
  let header = [ "engine"; "group size"; "tps" ] in
  let rvm_rows =
    List.map
      (fun group ->
        let config = { Baselines.Rvm.default_config with group_commit = group } in
        let inst = Testbed.rvm_instance ~config () in
        let r =
          run_debit_credit inst ~params:Workloads.Debit_credit.default_params ~warmup:200
            ~iters:2000
        in
        [ "RVM"; string_of_int group; Table.fmt_tps r.tps ])
      [ 1; 2; 4; 8; 16; 32; 64 ]
  in
  let perseas_row =
    let r =
      run_debit_credit (Testbed.perseas_instance ())
        ~params:Workloads.Debit_credit.default_params ~warmup:500 ~iters:10_000
    in
    [ "PERSEAS"; "-"; Table.fmt_tps r.tps ]
  in
  let rows = rvm_rows @ [ perseas_row ] in
  Table.print
    ~title:"Group commit: RVM batched log forces vs PERSEAS (section 6 claim)" ~header rows;
  Table.save_csv ~path:(csv_path "group_commit") ~header rows

(* ------------------------------------------------------------------ *)
(* C3: Remote-WAL (Ioanidis et al.) burst vs sustained load            *)

let remote_wal_load () =
  (* Burst commits run at remote-memory speed; sustained load backs up
     behind the asynchronous disk writer — section 2's critique of the
     remote-memory WAL.  PERSEAS has no disk anywhere, so its rate is
     flat.  Measure tps over windows of increasing depth into a long
     run. *)
  let windows = [ 500; 1000; 2000; 4000; 8000; 16000 ] in
  let series (module I : Testbed.INSTANCE) =
    let module W = Workloads.Debit_credit.Make (I.E) in
    let rng = Rng.create 5 in
    let db = W.setup I.engine ~params:Workloads.Debit_credit.small_params in
    let done_ = ref 0 in
    List.map
      (fun upto ->
        let t0 = Clock.now I.clock in
        let batch = upto - !done_ in
        for _ = 1 to batch do
          W.transaction db rng
        done;
        done_ := upto;
        float_of_int batch /. Time.to_s (Clock.now I.clock - t0))
      windows
  in
  let rwal = series (Testbed.remote_wal_instance ()) in
  let perseas = series (Testbed.perseas_instance ()) in
  let header = [ "txns so far"; "RemoteWAL tps (window)"; "PERSEAS tps (window)" ] in
  let rows =
    List.map2
      (fun (upto, r) p -> [ Table.fmt_int upto; Table.fmt_tps r; Table.fmt_tps p ])
      (List.combine windows rwal) perseas
  in
  Table.print
    ~title:
      "Remote-memory WAL under load: bursts at network speed, sustained rate disk-bound (section 2)"
    ~header rows;
  Table.save_csv ~path:(csv_path "remote_wal_load") ~header rows

(* ------------------------------------------------------------------ *)
(* A4: replication degree                                              *)

let replication_degree () =
  let tps_with_mirrors k =
    let clock = Clock.create () in
    let dram = 64 * 1024 * 1024 in
    let specs =
      Cluster.spec ~dram_size:dram ~power_supply:0 "primary"
      :: List.init k (fun i ->
             Cluster.spec ~dram_size:dram ~power_supply:(i + 1) (Printf.sprintf "mirror%d" i))
    in
    let cluster = Cluster.create ~clock specs in
    let servers = List.init k (fun i -> Netram.Server.create (Cluster.node cluster (i + 1))) in
    let clients = List.map (fun server -> Netram.Client.create ~cluster ~local:0 ~server) servers in
    let t = Perseas.init_replicated clients in
    let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
    let rng = Rng.create 4 in
    let db = W.setup t ~params:Workloads.Debit_credit.small_params in
    let r = Measure.run ~clock ~warmup:500 ~iters:5000 (fun _ -> W.transaction db rng) in
    r.Measure.tps
  in
  let base = tps_with_mirrors 1 in
  let header = [ "mirrors"; "tps"; "vs 1 mirror" ] in
  let rows =
    List.map
      (fun k ->
        let tps = if k = 1 then base else tps_with_mirrors k in
        [ string_of_int k; Table.fmt_tps tps; Printf.sprintf "%.2fx" (tps /. base) ])
      [ 1; 2; 3; 4 ]
  in
  Table.print
    ~title:"Replication degree: debit-credit throughput vs number of mirrors (section 1)"
    ~header rows;
  Table.save_csv ~path:(csv_path "replication_degree") ~header rows

(* ------------------------------------------------------------------ *)
(* R2: availability and data-loss Monte Carlo                          *)

let availability () =
  let header =
    [ "deployment"; "availability %"; "loss events / decade"; "trials with loss %" ]
  in
  let rows =
    List.map
      (fun d ->
        let r = Availability.simulate ~trials:200 d in
        [
          r.Availability.label;
          Printf.sprintf "%.4f" (100. *. r.availability);
          Printf.sprintf "%.3f" r.loss_events_per_decade;
          Printf.sprintf "%.1f" (100. *. r.trials_with_loss);
        ])
      Availability.standard_deployments
  in
  Table.print
    ~title:
      "Availability Monte Carlo, 10-year horizon x200 trials (section 1's reliability argument)"
    ~header rows;
  Table.save_csv ~path:(csv_path "availability") ~header rows

(* ------------------------------------------------------------------ *)
(* T2: technology-trend projection (section 6)                         *)

let trend () =
  (* "The performance benefits of our approach will increase with time":
     interconnects improve 20-45 %/year, disks 10-20 %/year.  Project
     both cost models forward and watch the PERSEAS/RVM gap widen. *)
  let perseas_at years =
    let params = Sci.Params.projected ~years () in
    let bed = Testbed.perseas_bed ~params () in
    let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
    let rng = Rng.create 3 in
    let db = W.setup bed.perseas ~params:Workloads.Debit_credit.small_params in
    let r = Measure.run ~clock:bed.clock ~warmup:500 ~iters:5000 (fun _ -> W.transaction db rng) in
    r.Measure.tps
  in
  let rvm_at years =
    let clock = Clock.create () in
    let cluster = Cluster.create ~clock [ Cluster.spec "host" ] in
    let node = Cluster.node cluster 0 in
    let geometry = Disk.Device.projected_geometry ~years () in
    let device =
      Disk.Device.create ~clock ~backend:(Disk.Device.Magnetic geometry) ~capacity:(mb 64)
    in
    let engine = Baselines.Rvm.create ~node ~device () in
    let module W = Workloads.Debit_credit.Make (Baselines.Rvm.Engine) in
    let rng = Rng.create 3 in
    let db = W.setup engine ~params:Workloads.Debit_credit.small_params in
    let r =
      Measure.run ~clock
        ~finish:(fun () -> Baselines.Rvm.flush engine)
        ~warmup:100 ~iters:1000
        (fun _ -> W.transaction db rng)
    in
    r.Measure.tps
  in
  let header = [ "year"; "PERSEAS tps"; "RVM tps"; "speedup" ] in
  let rows =
    List.map
      (fun years ->
        let p = perseas_at years and r = rvm_at years in
        [ string_of_int (1998 + years); Table.fmt_tps p; Table.fmt_tps r; Table.fmt_ratio (p /. r) ])
      [ 0; 2; 4; 6; 8 ]
  in
  Table.print
    ~title:"Technology trend: projected PERSEAS vs RVM, debit-credit (section 6 claim)" ~header
    rows;
  Table.save_csv ~path:(csv_path "trend") ~header rows

(* ------------------------------------------------------------------ *)
(* R3: remote-memory paging vs disk swap                               *)

let paging () =
  (* The project this paper grew from: use idle cluster memory instead
     of the swap disk.  Sweep the resident-set fraction and compare the
     average access time of a random workload over a 16 MB address
     space. *)
  let module Pager = Netram.Pager in
  let pages = 4096 (* 16 MB *) in
  let accesses = 20_000 in
  let run ~backing_of ~frames =
    let clock = Clock.create () in
    let cluster =
      Cluster.create ~clock
        [
          Cluster.spec ~dram_size:(mb 64) ~power_supply:0 "local";
          Cluster.spec ~dram_size:(mb 64) ~power_supply:1 "memory-server";
        ]
    in
    let pager = Pager.create ~backing:(backing_of clock cluster) ~node:(Cluster.node cluster 0) ~pages ~frames () in
    let rng = Rng.create 31 in
    let t0 = Clock.now clock in
    for _ = 1 to accesses do
      let page = Rng.int rng pages in
      let addr = (page * Pager.page_size) + Rng.int rng (Pager.page_size - 8) in
      if Rng.bool rng then ignore (Pager.read pager ~addr ~len:8)
      else Pager.write pager ~addr (Bytes.make 8 'w')
    done;
    let elapsed = Clock.now clock - t0 in
    (Time.to_us elapsed /. float_of_int accesses, (Pager.stats pager).faults)
  in
  let remote_backing _clock cluster =
    Pager.Remote_memory
      (Netram.Client.create ~cluster ~local:0 ~server:(Netram.Server.create (Cluster.node cluster 1)))
  in
  let disk_backing clock _cluster =
    Pager.Swap_disk
      (Disk.Device.create ~clock ~backend:(Disk.Device.Magnetic Disk.Device.default_geometry)
         ~capacity:(pages * Pager.page_size))
  in
  let header =
    [ "resident %"; "faults"; "remote us/access"; "disk us/access"; "remote speedup" ]
  in
  let rows =
    List.map
      (fun percent ->
        let frames = max 1 (pages * percent / 100) in
        let remote_us, faults = run ~backing_of:remote_backing ~frames in
        let disk_us, _ = run ~backing_of:disk_backing ~frames in
        [
          string_of_int percent;
          Table.fmt_int faults;
          Table.fmt_us remote_us;
          Table.fmt_us disk_us;
          Table.fmt_ratio (disk_us /. remote_us);
        ])
      [ 25; 50; 75; 90; 99 ]
  in
  Table.print
    ~title:"Remote-memory paging vs disk swap: random access over a 16 MB space" ~header rows;
  Table.save_csv ~path:(csv_path "paging") ~header rows

(* ------------------------------------------------------------------ *)
(* D1: application-layer data structures on PERSEAS vs Vista           *)

let datastores () =
  (* What the intro's applications actually pay: operations per second
     of a transactional hash map and B+-tree on PERSEAS vs Vista (the
     fastest single-node alternative). *)
  let run_on (module I : Testbed.INSTANCE) =
    let module KV = Kvstore.Make (I.E) in
    let module BT = Btree.Make (I.E) in
    let kv = KV.create I.engine ~name:"bench-kv" in
    let bt = BT.create I.engine ~name:"bench-bt" in
    I.E.init_done I.engine;
    let rng = Rng.create 13 in
    let measure iters f =
      for i = 1 to iters / 10 do
        f i
      done;
      let t0 = Clock.now I.clock in
      for i = 1 to iters do
        f i
      done;
      float_of_int iters /. Time.to_s (Clock.now I.clock - t0)
    in
    (* Reads (get / range) are plain memory loads — free in virtual
       time — so only mutating operations are rated here. *)
    let kv_put = measure 5000 (fun i -> KV.put kv (Printf.sprintf "key%d" (i mod 800)) (string_of_int i)) in
    let kv_cycle =
      measure 2500 (fun i ->
          let key = Printf.sprintf "cyc%d" (i mod 100) in
          if KV.mem kv key then ignore (KV.delete kv key) else KV.put kv key "x")
    in
    let bt_insert =
      measure 5000 (fun i ->
          BT.insert bt ~key:(Int64.of_int (Rng.int rng 100_000)) ~value:(Int64.of_int i))
    in
    (I.label, kv_put, kv_cycle, bt_insert)
  in
  let header = [ "engine"; "kv put/s"; "kv put-delete cycle/s"; "btree insert/s" ] in
  let rows =
    List.map
      (fun (label, a, b, c) -> [ label; Table.fmt_tps a; Table.fmt_tps b; Table.fmt_tps c ])
      (* PERSEAS pays the mirror; Vista pays protected local stores. *)
      [ run_on (Testbed.perseas_instance ()); run_on (Testbed.vista_instance ()) ]
  in
  Table.print ~title:"Application data structures: transactional ops/s" ~header rows;
  Table.save_csv ~path:(csv_path "datastores") ~header rows

(* ------------------------------------------------------------------ *)
(* R4: systematic crash-point sweep                                    *)

let crash_sweep () =
  (* Enumerate every packet boundary of a 3-range debit-credit commit
     (1 and 2 mirrors, primary and mirror victims) and of an
     attach_mirror resync, crash there, and hold recovery to the
     Crashpoint oracle.  The run aborts with Oracle_violation if any
     point recovers to anything but a legal image. *)
  let reports =
    [
      Crashpoint.sweep (Crashpoint.commit_scenario ~mirrors:1 ());
      Crashpoint.sweep (Crashpoint.commit_scenario ~mirrors:2 ());
      Crashpoint.sweep ~victim:(Crashpoint.Mirror 0) (Crashpoint.commit_scenario ~mirrors:2 ());
      Crashpoint.sweep ~victim:(Crashpoint.Mirror 0) (Crashpoint.commit_scenario ~mirrors:1 ());
      Crashpoint.sweep (Crashpoint.attach_scenario ~mirrors:1 ());
      (* The elision stress mix, both packet schedules: crash points
         differ but the legal images must not. *)
      Crashpoint.sweep (Crashpoint.overlap_scenario ~elision:true ());
      Crashpoint.sweep (Crashpoint.overlap_scenario ~elision:false ());
      (* Concurrency: a group flush of three disjoint clients with a
         fourth transaction open across it — per-transaction atomicity
         with ≥2 in flight at every cut packet. *)
      Crashpoint.sweep (Crashpoint.concurrent_scenario ~mirrors:1 ());
      Crashpoint.sweep ~victim:(Crashpoint.Mirror 0) (Crashpoint.concurrent_scenario ~mirrors:2 ());
      (* Fuzzy checkpointing: commits interleaved with every phase of a
         checkpoint (slot zeroing, shipping, publication, truncation);
         each victim in turn, including the checkpoint target itself. *)
      Crashpoint.sweep (Crashpoint.checkpoint_scenario ());
      Crashpoint.sweep ~victim:(Crashpoint.Mirror 0) (Crashpoint.checkpoint_scenario ~mirrors:2 ());
      Crashpoint.sweep ~victim:Crashpoint.Ckpt_target (Crashpoint.checkpoint_scenario ());
    ]
  in
  let header =
    [ "scenario"; "victim"; "packets"; "old"; "new"; "repaired"; "max recovery (us)" ]
  in
  let rows =
    List.map
      (fun (r : Crashpoint.report) ->
        let max_us =
          List.fold_left (fun acc p -> max acc p.Crashpoint.recovery_us) 0. r.points
        in
        [
          r.label;
          Crashpoint.victim_label r.victim;
          string_of_int r.total_packets;
          string_of_int r.old_images;
          string_of_int r.new_images;
          string_of_int r.repaired;
          Table.fmt_us max_us;
        ])
      reports
  in
  Table.print
    ~title:"Crash-point sweep: every packet boundary crashed, oracle-checked (section 3)" ~header
    rows;
  Table.save_csv ~path:(csv_path "crash_sweep") ~header:Crashpoint.csv_header
    (List.concat_map Crashpoint.report_rows reports)

(* ------------------------------------------------------------------ *)
(* Self-healing replication under churn                                *)

let churn () =
  let r = Churn.run () in
  let summary =
    Printf.sprintf
      "committed %d txns (%.0f tps under churn), %d injections (%d pauses / %d crashes) over %d \
       nodes, %d retries after total mirror loss; resyncs: %d incremental (%s B) vs %d full (%s \
       B, full copy is %s B each)"
      r.Churn.committed r.tps
      (List.length r.injections)
      (List.length (List.filter (fun i -> i.Churn.kind = Churn.Pause) r.injections))
      (List.length (List.filter (fun i -> i.Churn.kind = Churn.Crash) r.injections))
      (List.length r.nodes_hit) r.outage_retries r.incremental_resyncs
      (Table.fmt_int r.incremental_bytes)
      r.full_resyncs
      (Table.fmt_int r.full_resync_bytes)
      (Table.fmt_int r.full_copy_bytes)
  in
  Table.print
    ~title:"Churn: debit-credit under mirror failures, supervisor healing from the spare pool"
    ~header:Churn.csv_header (Churn.report_rows r);
  print_endline summary;
  Table.save_csv ~path:(csv_path "churn") ~header:Churn.csv_header (Churn.report_rows r);
  Churn.check r;
  print_endline
    "oracle: factor restored, mirrors scrubbed clean, no committed transaction lost after \
     killing the primary"

(* ------------------------------------------------------------------ *)
(* R9: concurrent disjoint clients and group commit                     *)

(* Mostly-disjoint working sets: enough branches (the hottest record
   class — one per scale unit) that two in-flight transactions rarely
   draw the same 64-byte line; the occasional collision exercises the
   younger-aborts path and is retried by the driver. *)
let concurrency_params =
  {
    Workloads.Debit_credit.scale = 1024;
    accounts_per_branch = 250;
    history_slots = 8192;
    skew = Workloads.Debit_credit.Uniform;
  }

let concurrency_levels = [ 1; 2; 4; 8; 16; 32 ]

type concurrency_cell = {
  cc_mirrors : int;
  cc_clients : int;
  cc_tps : float;
  cc_pkts_per_txn : float;
  cc_conflicts : int;
  cc_flushes : int;
}

let concurrency_cell ~mirrors ~clients ~txns =
  (* One client runs the seed's eager protocol (the baseline the bar is
     measured against); concurrent runs batch two client rounds per
     flush — the queue depth is a policy knob independent of the client
     count, and two rounds amortise the burst set-up and fence without
     letting the durability window grow with load. *)
  let config =
    { Perseas.default_config with group_commit = (if clients = 1 then 1 else 2 * clients) }
  in
  let bed = Testbed.replicated_bed ~config ~mirrors () in
  let t = bed.Testbed.perseas in
  let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
  let rng = Rng.create 97 in
  let db = W.setup t ~params:concurrency_params in
  let spec =
    {
      Multi_client.prepare = (fun _ -> W.draw db rng);
      declare = (fun txn d -> W.declare db txn d);
      apply = (fun d -> W.apply db d);
    }
  in
  ignore (Multi_client.run t ~clients ~total:(max 64 (8 * clients)) spec);
  let nic = Cluster.nic bed.Testbed.cluster in
  Sci.Nic.reset_counters nic;
  let s0 = Perseas.stats t in
  let t0 = Clock.now bed.Testbed.clock in
  let s = Multi_client.run t ~clients ~total:txns spec in
  let elapsed_us = Time.to_us (Clock.now bed.Testbed.clock - t0) in
  let c = Sci.Nic.counters nic in
  let s1 = Perseas.stats t in
  assert (W.consistent db);
  {
    cc_mirrors = mirrors;
    cc_clients = clients;
    cc_tps = float_of_int s.Multi_client.committed *. 1e6 /. elapsed_us;
    cc_pkts_per_txn =
      float_of_int (c.Sci.Nic.packets64 + c.Sci.Nic.packets16)
      /. float_of_int s.Multi_client.committed;
    cc_conflicts = s.Multi_client.conflicts;
    cc_flushes = s1.Perseas.group_flushes - s0.Perseas.group_flushes;
  }

let concurrency () =
  let txns = 2000 in
  let cells =
    List.concat_map
      (fun mirrors ->
        List.map (fun clients -> concurrency_cell ~mirrors ~clients ~txns) concurrency_levels)
      [ 1; 3 ]
  in
  let header = [ "mirrors"; "clients"; "tps"; "pkts/txn"; "conflicts"; "group flushes" ] in
  let rows =
    List.map
      (fun c ->
        [
          string_of_int c.cc_mirrors;
          string_of_int c.cc_clients;
          Table.fmt_tps c.cc_tps;
          Printf.sprintf "%.2f" c.cc_pkts_per_txn;
          string_of_int c.cc_conflicts;
          string_of_int c.cc_flushes;
        ])
      cells
  in
  Table.print
    ~title:
      "R9: debit-credit throughput vs offered concurrency (group commit batches two client \
       rounds per flush)"
    ~header rows;
  Table.save_csv ~path:(csv_path "concurrency") ~header rows;
  (* Acceptance: at one mirror, concurrency 8 must at least double the
     sequential throughput on strictly fewer packets per transaction. *)
  let cell m c = List.find (fun x -> x.cc_mirrors = m && x.cc_clients = c) cells in
  let base = cell 1 1 and c8 = cell 1 8 in
  Printf.printf "speedup at 8 clients, 1 mirror: %.2fx; pkts/txn %.2f -> %.2f\n"
    (c8.cc_tps /. base.cc_tps)
    base.cc_pkts_per_txn c8.cc_pkts_per_txn;
  if c8.cc_tps < 2.0 *. base.cc_tps then
    failwith "concurrency: 8 clients did not double the sequential throughput";
  if c8.cc_pkts_per_txn >= base.cc_pkts_per_txn then
    failwith "concurrency: 8 clients did not cut packets per transaction"

(* ------------------------------------------------------------------ *)
(* R6: phase-level latency breakdown                                    *)

type latency_mix = Debit_credit_mix | Large_update_mix

let latency_mixes = [ Debit_credit_mix; Large_update_mix ]
let mix_label = function Debit_credit_mix -> "debit-credit" | Large_update_mix -> "large-update"

let mix_tx ~mix t =
  match mix with
  | Debit_credit_mix ->
      let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
      let rng = Rng.create 7 in
      let db = W.setup t ~params:Workloads.Debit_credit.small_params in
      fun _ -> W.transaction db rng
  | Large_update_mix ->
      let module S = Workloads.Synthetic.Make (Perseas.Engine) in
      let rng = Rng.create 42 in
      let db = S.setup t ~db_size:(mb 8) in
      fun _ -> S.transaction db rng ~tx_size:(kb 16)

let traced_run ?tail ~mix ~mirrors ~warmup ~iters () =
  let bed = Testbed.replicated_bed ~mirrors () in
  let t = bed.perseas in
  let tx = mix_tx ~mix t in
  (* Attach the sink only after setup, so its memory holds the run
     itself; Measure's cursor then scopes the breakdown to the
     measured window. *)
  let sink = Trace.Sink.memory () in
  Perseas.set_sink t sink;
  (Measure.run ~clock:bed.clock ~sink ?tail ~warmup ~iters tx, sink)

let latency_breakdown () =
  let header = "workload" :: "mirrors" :: "tps" :: Trace.Export.phase_csv_header in
  let rows =
    List.concat_map
      (fun mix ->
        List.concat_map
          (fun mirrors ->
            let r, _sink = traced_run ~mix ~mirrors ~warmup:200 ~iters:2000 () in
            List.map
              (fun row -> mix_label mix :: string_of_int mirrors :: Table.fmt_tps r.Measure.tps :: row)
              (Trace.Export.phase_csv_rows r.Measure.phases))
          [ 1; 2; 3 ])
      latency_mixes
  in
  Table.print
    ~title:
      "Latency breakdown: virtual microseconds per transaction phase (phases sum to end-to-end \
       latency)"
    ~header rows;
  Table.save_csv ~path:(csv_path "latency_breakdown") ~header rows

(* ------------------------------------------------------------------ *)
(* R7: telemetry under churn                                            *)

let telemetry () =
  (* The churn run again, this time watched: every 100 us of virtual
     time the sampler snapshots the full gauge set, and the series is
     cross-checked against the supervisor's own event log — the
     degraded windows the dashboard shows must be the ones the
     supervisor actually logged. *)
  let r, tel = Telemetry.instrumented_churn () in
  let header, rows = Telemetry.csv ~tel in
  Table.save_csv ~path:(csv_path "telemetry_churn") ~header rows;
  print_string (Telemetry.top r tel);
  Churn.check r;
  let a =
    Telemetry.agreement ~target:Churn.default_params.Churn.mirrors
      ~samples:(Trace.Timeseries.samples tel) r.Churn.supervisor_events
  in
  Telemetry.check_agreement a;
  Printf.printf
    "agreement: sampler caught %d of %d supervisor degraded windows; %d/%d degraded signals \
     inside logged windows\n"
    a.Telemetry.windows_seen a.windows_total a.matched_signals a.degraded_signals;
  Printf.printf "saved %d samples x %d gauges to %s\n"
    (Trace.Timeseries.sample_count tel)
    (List.length (Trace.Timeseries.names tel))
    (csv_path "telemetry_churn")

(* A single instrumented workload run for `perseas_cli timeline`: spans
   and instants from the sink, gauges sampled on a fixed virtual-time
   grid, both exported — the CSV for plotting, the Chrome JSON (with
   counter tracks) for Perfetto. *)
let timeline_run ?sink_capacity ~mix ~mirrors ~iters ~interval () =
  let bed = Testbed.replicated_bed ~mirrors () in
  let t = bed.Testbed.perseas in
  let tx =
    match mix with
    | Debit_credit_mix ->
        let module W = Workloads.Debit_credit.Make (Perseas.Engine) in
        let rng = Rng.create 7 in
        let db = W.setup t ~params:Workloads.Debit_credit.small_params in
        fun () -> W.transaction db rng
    | Large_update_mix ->
        let module S = Workloads.Synthetic.Make (Perseas.Engine) in
        let rng = Rng.create 42 in
        let db = S.setup t ~db_size:(mb 8) in
        fun () -> S.transaction db rng ~tx_size:(kb 16)
  in
  let sink = Trace.Sink.memory ?capacity:sink_capacity () in
  Perseas.set_sink t sink;
  let tel = Trace.Timeseries.create () in
  Perseas.set_telemetry t tel;
  List.iteri
    (fun i s -> Netram.Server.set_telemetry s tel ~label:(Printf.sprintf "mirror%d" i))
    bed.Testbed.servers;
  Trace.Timeseries.rate tel ~name:"rate.tps" ~source:"perseas.committed";
  Trace.Timeseries.rate tel ~name:"rate.bytes_per_s" ~source:"nic.bytes";
  let clock = bed.Testbed.clock in
  Trace.Timeseries.sample tel ~at:(Clock.now clock);
  let next = ref (Clock.now clock + interval) in
  for _ = 1 to iters do
    tx ();
    while !next <= Clock.now clock do
      Trace.Timeseries.sample tel ~at:!next;
      next := !next + interval
    done
  done;
  (tel, sink)

let timeline mix =
  let label = mix_label mix in
  (* A 16 KB large-update transaction emits ~2 600 per-packet instants,
     so the big mix gets a shorter run, a grid matched to its ~1.6 ms
     transactions, and a ring-bounded sink (keeps the trailing window;
     the counter tracks still cover the whole run) — otherwise the
     Chrome JSON runs to hundreds of MB and Perfetto cannot open it. *)
  let iters, interval, sink_capacity =
    match mix with
    | Debit_credit_mix -> (2000, Time.us 50.0, None)
    | Large_update_mix -> (500, Time.us 200.0, Some 50_000)
  in
  let tel, sink = timeline_run ?sink_capacity ~mix ~mirrors:2 ~iters ~interval () in
  let json_path = csv_path ("timeline_" ^ label) |> Filename.remove_extension in
  let json_path = json_path ^ ".json" in
  Trace.Export.chrome_json_to_file
    ~series:(Trace.Timeseries.samples tel)
    ~path:json_path ~spans:(Trace.Sink.spans sink) ~events:(Trace.Sink.events sink) ();
  let header, rows = Telemetry.csv ~tel in
  Table.save_csv ~path:(csv_path ("timeline_" ^ label)) ~header rows;
  Printf.printf "%s: %d samples x %d gauges -> %s; Chrome trace with counter tracks -> %s\n" label
    (Trace.Timeseries.sample_count tel)
    (List.length (Trace.Timeseries.names tel))
    (csv_path ("timeline_" ^ label))
    json_path

(* ------------------------------------------------------------------ *)
(* Protocol audit: the online invariant monitor over the fault
   harnesses *)

let audit () =
  (* The {!Trace.Monitor} watches every packet of the adversarial
     harnesses live: undo-before-data, fence-last, per-mirror epoch
     monotonicity, convoy integrity and checkpoint-cut placement.  A
     violation dumps a flight-recorder bundle under results/postmortem
     and aborts the run — so a green audit is a machine-checked
     statement that the protocol as sent on the wire obeys its own
     rules under crashes, churn and checkpointing, not merely that the
     recovered images look right afterwards. *)
  let dir = Filename.concat "results" "postmortem" in
  let module C = Crashpoint in
  let sweeps =
    [
      C.sweep ~postmortem:dir (C.commit_scenario ~mirrors:2 ());
      C.sweep ~victim:(C.Mirror 0) ~postmortem:dir (C.commit_scenario ~mirrors:2 ());
      C.sweep ~postmortem:dir (C.concurrent_scenario ~mirrors:1 ());
      C.sweep ~postmortem:dir (C.checkpoint_scenario ());
      (* Shard failover: a shard primary dies at every packet of its
         own commit and of a phase-switch fence + cross-shard drain,
         with the monitor checking the STAR rule live. *)
      C.sweep ~postmortem:dir (C.shard_commit_scenario ());
      C.sweep ~postmortem:dir (C.shard_fence_scenario ());
    ]
  in
  (* Churn with background checkpointing: recruitment resyncs, log
     truncations and checkpoint cuts all land under the monitor. *)
  let params = { Churn.default_params with checkpoint_interval = Some (Time.ms 8.0) } in
  let r = Churn.run ~params ~postmortem:dir () in
  let header = [ "harness"; "work"; "monitor alerts" ] in
  let rows =
    List.map
      (fun (s : C.report) ->
        [
          Printf.sprintf "crash-sweep %s (%s dies)" s.C.label (C.victim_label s.C.victim);
          Printf.sprintf "%d crash points" (List.length s.C.points);
          "0";
        ])
      sweeps
    @ [
        [
          "churn + checkpoints";
          Printf.sprintf "%d txns, %d injections" r.Churn.committed (List.length r.Churn.injections);
          "0";
        ];
      ]
  in
  Table.print ~title:"Protocol audit: online invariant monitor across the fault harnesses" ~header
    rows;
  Table.save_csv ~path:(csv_path "audit") ~header rows;
  print_endline
    "audit green: zero invariant violations on the wire; a failure would have left a post-mortem \
     bundle under results/postmortem/"

(* ------------------------------------------------------------------ *)
(* R12: tail attribution and the analytic cost model *)

type explained = {
  ex_label : string;
  ex_mirrors : int;
  ex_result : Measure.result;
  ex_tail : Trace.Tail.t;
  ex_model : Costmodel.t;
  ex_pkts64 : int;  (** NIC 64-byte packet delta over the whole traced window. *)
  ex_pkts16 : int;
  ex_bytes : int;  (** NIC bytes written over the window. *)
}

let explain_run ?config ~mix ~mirrors ~warmup ~iters () =
  let bed = Testbed.replicated_bed ?config ~mirrors () in
  let t = bed.perseas in
  let tx = mix_tx ~mix t in
  let nic = Cluster.nic bed.cluster in
  let model = Costmodel.create ~config:(Perseas.config t) ~params:(Sci.Nic.params nic) () in
  let tail = Trace.Tail.create () in
  (* Ring + model tee'd on one stream, attached after setup; the NIC
     counters reset at the same instant so the model's settled total is
     comparable to the hardware delta over the whole traced window
     (warmup included — the model watches every fence, not just the
     measured ones). *)
  let sink = Trace.Sink.tee [ Trace.Sink.memory (); Costmodel.sink model ] in
  Perseas.set_sink t sink;
  Sci.Nic.reset_counters nic;
  let result = Measure.run ~clock:bed.clock ~sink ~tail ~warmup ~iters tx in
  let c = Sci.Nic.counters nic in
  {
    ex_label = mix_label mix;
    ex_mirrors = mirrors;
    ex_result = result;
    ex_tail = tail;
    ex_model = model;
    ex_pkts64 = c.Sci.Nic.packets64;
    ex_pkts16 = c.Sci.Nic.packets16;
    ex_bytes = c.Sci.Nic.bytes_written;
  }

(* Fraction of an exemplar's end-to-end latency covered by named [txn]
   phases — the spans partition the transaction, so anything below 1.0
   is clock charge no phase claims. *)
let exemplar_coverage (e : Trace.Tail.exemplar) =
  if e.Trace.Tail.e_latency_us <= 0. then 1.
  else
    let covered =
      List.fold_left
        (fun acc (s : Trace.Span.t) ->
          if s.Trace.Span.cat = "txn" then acc +. Trace.Span.duration_us s else acc)
        0. e.Trace.Tail.e_spans
    in
    covered /. e.Trace.Tail.e_latency_us

let explain () =
  let cells =
    List.map
      (fun mirrors -> explain_run ~mix:Debit_credit_mix ~mirrors ~warmup:200 ~iters:2000 ())
      [ 1; 2; 3 ]
  in
  let header = [ "workload"; "mirrors"; "phase"; "count"; "p99_us"; "share_p99" ] in
  let rows =
    List.concat_map
      (fun x ->
        let p99 = x.ex_result.Measure.p99_us in
        let prefix = [ x.ex_label; string_of_int x.ex_mirrors ] in
        (prefix @ [ "end-to-end"; string_of_int x.ex_result.Measure.iters; Table.fmt_us p99; "" ])
        :: List.map
             (fun (name, h) ->
               prefix
               @ [
                   name;
                   string_of_int (Stats.Histogram.count h);
                   Table.fmt_us (Stats.Histogram.percentile h 99.);
                   Printf.sprintf "%.3f" (Stats.Histogram.percentile h 99. /. p99);
                 ])
             (List.filter (fun (_, h) -> Stats.Histogram.count h > 0) (Trace.Tail.phases x.ex_tail)))
      cells
  in
  Table.print ~title:"Tail attribution: per-phase p99 share of end-to-end p99 (debit-credit)"
    ~header rows;
  Table.save_csv ~path:(csv_path "tail_attribution") ~header rows;
  List.iter
    (fun x ->
      let m = x.ex_model in
      let pred = Costmodel.predicted_total m in
      Printf.printf
        "%s x%d: cost model settled %d commit units, drift %d; predicted %d pkts / %d B vs NIC %d \
         pkts / %d B\n"
        x.ex_label x.ex_mirrors (Costmodel.units_checked m) (Costmodel.drift_count m)
        (Costmodel.cost_packets pred) pred.Costmodel.bytes (x.ex_pkts64 + x.ex_pkts16) x.ex_bytes;
      List.iter
        (fun a -> Printf.printf "  DRIFT %s\n" (Costmodel.describe a))
        (Costmodel.alerts m);
      (* The R12 contract: exact accounting, every packet attributed. *)
      if Costmodel.drift_count m <> 0 then failwith "explain: cost-model drift on an eager cell";
      if Costmodel.pending m <> 0 then failwith "explain: unfenced commit units at end of run";
      if Costmodel.cost_packets (Costmodel.unattributed m) <> 0 then
        failwith "explain: unattributed packets in a steady-state window";
      if pred.Costmodel.pkts64 <> x.ex_pkts64 || pred.Costmodel.pkts16 <> x.ex_pkts16 then
        failwith "explain: settled predictions do not sum to the NIC counter delta";
      (* Attribution: named phases must explain >= 95% of the p99. *)
      let phase_sum =
        List.fold_left (fun acc (_, p) -> acc +. p) 0. (Trace.Tail.phase_p99s x.ex_tail)
      in
      if phase_sum < 0.95 *. x.ex_result.Measure.p99_us then
        failwith "explain: phases attribute < 95% of measured p99";
      match Trace.Tail.exemplars x.ex_tail with
      | [] -> failwith "explain: no exemplar retained"
      | worst :: _ ->
          Printf.printf "  worst exemplar: txn %s, %.2f us, %.1f%% phase-covered\n"
            (Option.value ~default:"?" (Trace.Tail.exemplar_txn worst))
            worst.Trace.Tail.e_latency_us
            (100. *. exemplar_coverage worst))
    cells;
  print_endline
    "explain green: zero cost-model drift, all packets attributed, worst-K exemplars retained"

(* ------------------------------------------------------------------ *)
(* R13: sharding scale-out *)

let sharding () =
  (* Aggregate debit-credit throughput vs shard count at a fixed mirror
     factor, under three cross-shard mixes.  One TPC-scaled bank —
     10 branches = 10^6 accounts, Zipf-hot — is split evenly across the
     shards (floored at one branch group per shard, so the 8- and
     16-shard points grow the bank the way TPC scaling would).  Each
     shard is a full replicated world on its own clock; aggregate tps
     is measured on the frontier clock, so the parallel-phase speedup
     and the single-master drain stalls both land in the number. *)
  let shard_counts = [ 1; 2; 4; 8; 16 ] in
  let mixes = [ 0; 5; 20 ] in
  let params_for shards =
    let base = Workloads.Debit_credit.scaled_params ~tps:10_000 () in
    { base with Workloads.Debit_credit.scale = max 1 (base.Workloads.Debit_credit.scale / shards) }
  in
  let cells =
    List.concat_map
      (fun cross ->
        List.map
          (fun shards ->
            let params = params_for shards in
            Sharding.run_cell
              ~dram_mb:(64 + (params.Workloads.Debit_credit.scale * 16))
              ~params ~warmup:400 ~total:4000 ~shards ~cross_per_100:cross ())
          shard_counts)
      mixes
  in
  let tps_at ~shards ~cross =
    match
      List.find_opt
        (fun c -> c.Sharding.c_shards = shards && c.Sharding.c_cross_per_100 = cross)
        cells
    with
    | Some c -> c.Sharding.c_tps
    | None -> failwith "sharding: missing cell"
  in
  let header =
    [
      "shards";
      "cross/100";
      "singles";
      "cross";
      "switches";
      "conflicts";
      "elapsed (us)";
      "tps";
      "speedup";
      "pkts/txn";
    ]
  in
  let rows =
    List.map
      (fun (c : Sharding.cell) ->
        [
          string_of_int c.Sharding.c_shards;
          string_of_int c.Sharding.c_cross_per_100;
          string_of_int c.Sharding.c_committed;
          string_of_int c.Sharding.c_cross;
          string_of_int c.Sharding.c_switches;
          string_of_int c.Sharding.c_conflicts;
          Printf.sprintf "%.0f" c.Sharding.c_elapsed_us;
          Table.fmt_tps c.Sharding.c_tps;
          Table.fmt_ratio (c.Sharding.c_tps /. tps_at ~shards:1 ~cross:c.Sharding.c_cross_per_100);
          Printf.sprintf "%.1f" c.Sharding.c_pkts_per_txn;
        ])
      cells
  in
  Table.print
    ~title:"Sharding: aggregate debit-credit tps vs shard count (1 mirror/shard, Zipf 0.8)" ~header
    rows;
  Table.save_csv ~path:(csv_path "sharding") ~header rows;
  (* The scale-out acceptance bar: with no cross-shard traffic, four
     primaries must buy at least 3x one primary at equal mirror
     factor. *)
  let s1 = tps_at ~shards:1 ~cross:0 and s4 = tps_at ~shards:4 ~cross:0 in
  if s4 < 3.0 *. s1 then
    failwith
      (Printf.sprintf "sharding: 4-shard tps %.0f is under 3x the 1-shard %.0f" s4 s1);
  Printf.printf "sharding green: 4 shards = %.2fx of 1 shard at 0%% cross-shard\n"
    (s4 /. s1)

(* ------------------------------------------------------------------ *)

let names =
  [
    ("fig5", "Figure 5: SCI remote write latency vs size", fig5);
    ("fig6", "Figure 6: PERSEAS transaction overhead vs size", fig6);
    ("table1", "Table 1: PERSEAS debit-credit / order-entry throughput", table1);
    ("compare-synthetic", "Small synthetic transactions across engines", compare_synthetic);
    ("compare-bench", "debit-credit and order-entry across engines", compare_bench);
    ("db-size-sweep", "PERSEAS throughput vs database size", db_size_sweep);
    ("recovery", "Crash mid-commit and recover from the mirror", recovery);
    ("crash-sweep", "Systematic crash at every packet boundary, oracle-checked", crash_sweep);
    ("churn", "Mirror churn with spare-pool self-healing, zero committed-data loss", churn);
    ("copy-counts", "Per-transaction copy and I/O counts", copy_counts);
    ("ablation-memcpy", "sci_memcpy alignment optimisation on/off", ablation_memcpy);
    ("elision", "Redundancy elision: first-write-only undo + coalesced commit vs naive", elision);
    ("group-commit", "RVM group commit vs PERSEAS", group_commit);
    ("remote-wal-load", "Remote-memory WAL: burst vs sustained load", remote_wal_load);
    ("replication-degree", "PERSEAS throughput vs number of mirrors", replication_degree);
    ("availability", "Availability / data-loss Monte Carlo", availability);
    ("trend", "Technology-trend projection: the gap widens", trend);
    ("paging", "Remote-memory paging vs disk swap", paging);
    ("datastores", "Transactional hash map and B+-tree ops/s", datastores);
    ("latency-breakdown", "Per-phase transaction latency from traces", latency_breakdown);
    ("telemetry", "Gauge time-series under churn, checked against the supervisor log", telemetry);
    ("concurrency", "Concurrent disjoint clients: tps and pkts/txn vs offered load", concurrency);
    ("checkpoint", "Fuzzy checkpoints: recovery time flat vs database size", checkpoint);
    ("audit", "Online protocol-invariant monitor over crash sweeps and churn", audit);
    ("explain", "Tail attribution + analytic cost model vs NIC counters", explain);
    ("sharding", "Multi-primary sharding: aggregate tps vs shard count and cross-shard mix", sharding);
  ]

let all () = List.iter (fun (_, _, run) -> run ()) names
