(* Systematic crash-point enumeration (the correctness tool behind the
   paper's §3 claim): count every remote packet a workload script sends,
   then re-run it once per packet boundary, killing the primary (or a
   chosen mirror) exactly there, and hold recovery to an oracle —
   atomicity (the database equals a legal image), epoch monotonicity,
   and clean mirrors after resync. *)

open Sim
module P = Perseas
module Node = Cluster.Node

type env = {
  clock : Clock.t;
  cluster : Cluster.t;
  servers : Netram.Server.t list;
  primary : int;
  spare : int;
  ckpt : Netram.Server.t option;
  t : P.t;
}

type victim = Primary | Mirror of int | Ckpt_target
type image = Pre | Post | Checkpoint of int

type point = {
  index : int;
  crashed : bool;
  image : image;
  replayed_records : int;
  replayed_bytes : int;
  recovery_us : float;
  epoch_before : int64;
  epoch_after : int64;
  mismatches : int;
}

type report = {
  label : string;
  victim : victim;
  total_packets : int;
  points : point list;
  old_images : int;
  new_images : int;
  repaired : int;
}

type scenario = {
  label : string;
  make : unit -> env;
  script : env -> checkpoint:(unit -> unit) -> unit;
}

exception Oracle_violation of string

let violation fmt = Printf.ksprintf (fun msg -> raise (Oracle_violation msg)) fmt

let image_label = function
  | Pre -> "old"
  | Post -> "new"
  | Checkpoint i -> Printf.sprintf "checkpoint%d" i

let victim_label = function
  | Primary -> "primary"
  | Mirror i -> Printf.sprintf "mirror%d" i
  | Ckpt_target -> "ckpt-target"

(* The whole-database fingerprint an image is compared by. *)
let signature t =
  List.sort compare (List.map (fun s -> (P.segment_name s, P.checksum t s)) (P.segments t))

let classify ~pre ~checkpoints ~post s =
  if s = post then Some Post
  else if s = pre then Some Pre
  else
    let rec find i = function
      | [] -> None
      | c :: rest -> if s = c then Some (Checkpoint i) else find (i + 1) rest
    in
    find 0 checkpoints

(* Dry run: same script, counting hook, no crash.  Captures the packet
   count and every legal image (pre-state, each checkpoint the script
   declares, post-state).  Runs are deterministic, so these images are
   exactly what the crashing runs produce at the same boundaries. *)
let dry_run scenario =
  let env = scenario.make () in
  let count = ref 0 in
  let checkpoints = ref [] in
  let pre = signature env.t in
  P.set_packet_hook env.t (Some (fun () -> incr count));
  scenario.script env ~checkpoint:(fun () -> checkpoints := signature env.t :: !checkpoints);
  P.set_packet_hook env.t None;
  (!count, pre, List.rev !checkpoints, signature env.t)

let check_clean_mirrors label t ~where =
  match P.verify_mirrors t with
  | [] -> 0
  | (seg, i) :: _ as l ->
      violation "%s: %d mirror mismatch(es) %s (first: segment %S on mirror %d)" label
        (List.length l) where seg i

let check_epoch label ~epoch_before ~epoch_after =
  if Int64.compare epoch_after epoch_before <= 0 then
    violation "%s: epoch not monotone (%Ld -> %Ld)" label epoch_before epoch_after

(* ------------------------------------------------------------------ *)
(* Primary-victim point: the paper's headline scenario.  The hook
   raises with exactly [k] packets sent, the primary node is crashed,
   and the database is rebuilt on the spare from the mirrors. *)

exception Crash

let run_primary_point ?(attach = fun (_ : env) -> ()) ?(recovery_sink = Trace.Sink.noop) scenario
    ~pre ~checkpoints ~post ~k ~total =
  let env = scenario.make () in
  attach env;
  let epoch_before = P.epoch env.t in
  let sent = ref 0 in
  P.set_packet_hook env.t (Some (fun () -> if !sent >= k then raise Crash else incr sent));
  let crashed =
    match scenario.script env ~checkpoint:(fun () -> ()) with
    | () -> false
    | exception Crash -> true
  in
  P.set_packet_hook env.t None;
  if not crashed then begin
    (* k = total: the script ran to completion under the hook. *)
    if signature env.t <> post then
      violation "%s: uncrashed run diverged from the dry-run image" scenario.label;
    let mismatches = check_clean_mirrors scenario.label env.t ~where:"after a full run" in
    {
      index = k;
      crashed = false;
      image = Post;
      replayed_records = 0;
      replayed_bytes = 0;
      recovery_us = 0.;
      epoch_before;
      epoch_after = P.epoch env.t;
      mismatches;
    }
  end
  else begin
    ignore (Cluster.crash_node env.cluster env.primary Cluster.Failure.Software_error);
    let replayed = ref 0 and bytes = ref 0 in
    (* When the scenario maintains a checkpoint target, recovery gets
       it as a restore source: the probe must reject slots the crash
       left torn and fall back to the mirrors without losing a byte. *)
    let checkpoint =
      match env.ckpt with
      | Some s when Netram.Server.is_alive s -> Some (P.Ram_source s)
      | _ -> None
    in
    let t0 = Clock.now env.clock in
    let t2 =
      P.recover_replicated ~config:(P.config env.t) ~sink:recovery_sink
        ~on_repair:(fun ~name:_ ~len ->
          incr replayed;
          bytes := !bytes + len)
        ?checkpoint ~cluster:env.cluster ~local:env.spare ~servers:env.servers ()
    in
    let recovery_us = Time.to_us (Clock.now env.clock - t0) in
    let image =
      match classify ~pre ~checkpoints ~post (signature t2) with
      | Some img -> img
      | None ->
          violation "%s: crash at packet %d/%d recovered to neither a pre- nor a post-image"
            scenario.label k total
    in
    let epoch_after = P.epoch t2 in
    check_epoch scenario.label ~epoch_before ~epoch_after;
    let mismatches =
      check_clean_mirrors scenario.label t2
        ~where:(Printf.sprintf "after recovery from packet %d" k)
    in
    {
      index = k;
      crashed = true;
      image;
      replayed_records = !replayed;
      replayed_bytes = !bytes;
      recovery_us;
      epoch_before;
      epoch_after;
      mismatches;
    }
  end

(* ------------------------------------------------------------------ *)
(* Mirror-victim point: the primary survives; a mirror node dies just
   before packet [k] goes out.  The library must either finish the
   script degraded or — when the victim was the last mirror — roll the
   transaction back, raise All_mirrors_lost, and stay usable. *)

(* A transaction that moves no data: declaring and committing one range
   forces a plan against every mirror, so a death that fell between
   plans (a cut mid-plan is only noticed at the next plan creation)
   surfaces here rather than lingering undetected. *)
let probe env =
  match P.segments env.t with
  | [] -> ()
  | seg :: _ ->
      let txn = P.begin_transaction env.t in
      P.set_range txn seg ~off:0 ~len:64;
      P.commit txn;
      (* Group-commit engines stage the probe instead of planning; the
         drain forces the convoy so a mid-plan death surfaces here too
         (no-op for eager engines — the queue is empty). *)
      P.flush env.t

let run_mirror_point ?(attach = fun (_ : env) -> ()) scenario ~pre ~checkpoints ~post ~k
    ~mirror_index =
  let env = scenario.make () in
  attach env;
  let victim_node =
    match List.nth_opt (P.mirrors env.t) mirror_index with
    | Some mi -> mi.P.node_id
    | None -> invalid_arg "Crashpoint.sweep: mirror index out of range"
  in
  let epoch_before = P.epoch env.t in
  let sent = ref 0 in
  let killed = ref false in
  P.set_packet_hook env.t
    (Some
       (fun () ->
         if !sent = k && not !killed then begin
           killed := true;
           ignore (Cluster.crash_node env.cluster victim_node Cluster.Failure.Hardware_error)
         end;
         incr sent));
  let all_lost =
    match scenario.script env ~checkpoint:(fun () -> ()) with
    | () -> false
    | exception P.All_mirrors_lost -> true
  in
  P.set_packet_hook env.t None;
  let all_lost =
    all_lost || (match probe env with () -> false | exception P.All_mirrors_lost -> true)
  in
  let image =
    match classify ~pre ~checkpoints ~post (signature env.t) with
    | Some img -> img
    | None ->
        violation "%s: mirror death at packet %d left the local database in an illegal state"
          scenario.label k
  in
  let recovery_us =
    if all_lost then begin
      (* The guard must have closed the wounded transaction: the
         library is still usable, and a fresh mirror restores
         recoverability. *)
      P.abort (P.begin_transaction env.t);
      let t0 = Clock.now env.clock in
      P.attach_mirror env.t ~server:(Netram.Server.create (Cluster.node env.cluster env.spare));
      Time.to_us (Clock.now env.clock - t0)
    end
    else 0.
  in
  let epoch_after = P.epoch env.t in
  check_epoch scenario.label ~epoch_before ~epoch_after;
  let mismatches =
    check_clean_mirrors scenario.label env.t
      ~where:(Printf.sprintf "after mirror death at packet %d" k)
  in
  {
    index = k;
    crashed = !killed;
    image;
    replayed_records = 0;
    replayed_bytes = 0;
    recovery_us;
    epoch_before;
    epoch_after;
    mismatches;
  }

(* ------------------------------------------------------------------ *)
(* Checkpoint-target-victim point: the node holding the checkpoint
   slots dies just before packet [k].  Checkpointing is an optimisation,
   never a durability requirement, so the script must run to completion
   — checkpoint operations degrade to typed no-ops (Target_lost is
   caught by the scenario) while every commit still lands. *)

let run_ckpt_point ?(attach = fun (_ : env) -> ()) scenario ~pre ~checkpoints ~post ~k =
  let env = scenario.make () in
  attach env;
  let victim_node =
    match env.ckpt with
    | Some s -> Node.id (Netram.Server.node s)
    | None -> invalid_arg "Crashpoint.sweep: scenario has no checkpoint target"
  in
  let epoch_before = P.epoch env.t in
  let sent = ref 0 in
  let killed = ref false in
  P.set_packet_hook env.t
    (Some
       (fun () ->
         if !sent = k && not !killed then begin
           killed := true;
           ignore (Cluster.crash_node env.cluster victim_node Cluster.Failure.Hardware_error)
         end;
         incr sent));
  scenario.script env ~checkpoint:(fun () -> ());
  P.set_packet_hook env.t None;
  probe env;
  let image =
    match classify ~pre ~checkpoints ~post (signature env.t) with
    | Some img -> img
    | None ->
        violation "%s: checkpoint-target death at packet %d left the database in an illegal state"
          scenario.label k
  in
  (* Losing the target must never cost committed data: the script ran
     every commit, so the surviving database must be the post-image. *)
  if !killed && image <> Post then
    violation "%s: checkpoint-target death at packet %d lost committed data (image %s)"
      scenario.label k (image_label image);
  let epoch_after = P.epoch env.t in
  check_epoch scenario.label ~epoch_before ~epoch_after;
  let mismatches =
    check_clean_mirrors scenario.label env.t
      ~where:(Printf.sprintf "after checkpoint-target death at packet %d" k)
  in
  {
    index = k;
    crashed = !killed;
    image;
    replayed_records = 0;
    replayed_bytes = 0;
    recovery_us = 0.;
    epoch_before;
    epoch_after;
    mismatches;
  }

(* ------------------------------------------------------------------ *)

let sweep ?(victim = Primary) ?postmortem scenario =
  let total, pre, checkpoints, post = dry_run scenario in
  let run_point ?attach ?recovery_sink k =
    match victim with
    | Primary -> run_primary_point ?attach ?recovery_sink scenario ~pre ~checkpoints ~post ~k ~total
    | Mirror i -> run_mirror_point ?attach scenario ~pre ~checkpoints ~post ~k ~mirror_index:i
    | Ckpt_target -> run_ckpt_point ?attach scenario ~pre ~checkpoints ~post ~k
  in
  let points =
    List.init (total + 1) (fun k ->
        match postmortem with
        | None -> run_point k
        | Some dir ->
            (* Each point flies its own recorder: a fresh ring and a
               fresh monitor (the engine is rebuilt from scratch, so
               carried-over monitor state would be stale), dumped only
               when this point's oracle — or the monitor itself —
               trips. *)
            let f = Forensics.create () in
            let engine = ref None in
            let attach env =
              engine := Some env.t;
              Forensics.attach f env.t
            in
            let dump cause =
              ignore
                (Forensics.dump f
                   ~dir:
                     (Filename.concat dir
                        (Printf.sprintf "%s-%s-p%d" scenario.label (victim_label victim) k))
                   ~cause
                   ?stats:(Option.map P.stats !engine)
                   ())
            in
            let point =
              try run_point ~attach ~recovery_sink:(Forensics.sink f) k
              with Oracle_violation msg as e ->
                dump msg;
                raise e
            in
            (match Forensics.alerts f with
            | [] -> ()
            | a :: _ ->
                let msg =
                  Printf.sprintf "%s: protocol monitor alert at point %d: %s" scenario.label k
                    (Format.asprintf "%a" Trace.Monitor.pp_alert a)
                in
                dump msg;
                raise (Oracle_violation msg));
            point)
  in
  let count f = List.length (List.filter f points) in
  {
    label = scenario.label;
    victim;
    total_packets = total;
    points;
    old_images = count (fun p -> p.image = Pre);
    new_images = count (fun p -> p.image = Post);
    repaired = count (fun p -> p.replayed_records > 0);
  }

(* ------------------------------------------------------------------ *)
(* Canned scenarios                                                    *)

let table_names = [ "accounts"; "branches"; "history" ]

let small_config = { P.default_config with undo_capacity = 128 * 1024; max_segments = 8 }

let seed_segment t name ~size =
  let seg = P.malloc t ~name ~size in
  let salt = String.length name * 31 in
  P.write t seg ~off:0 (Bytes.init size (fun i -> Char.chr ((i * 7 + salt) land 0xff)));
  seg

(* Cluster geometry shared by the canned scenarios: primary on node 0,
   mirrors on 1..m, then [extras] named nodes, then the spare last —
   every node on its own power supply so failures are independent. *)
let make_cluster ?(config = small_config) ~mirrors ~extras () =
  let clock = Clock.create () in
  let dram = 2 * 1024 * 1024 in
  let names =
    ("primary" :: List.init mirrors (Printf.sprintf "mirror%d")) @ extras @ [ "spare" ]
  in
  let specs = List.mapi (fun i n -> Cluster.spec ~dram_size:dram ~power_supply:i n) names in
  let cluster = Cluster.create ~clock specs in
  let servers = List.init mirrors (fun i -> Netram.Server.create (Cluster.node cluster (i + 1))) in
  let clients = List.map (fun server -> Netram.Client.create ~cluster ~local:0 ~server) servers in
  (clock, cluster, servers, P.init_replicated ~config clients)

let commit_scenario ?(mirrors = 1) ?(ranges = 3) ?(range_len = 256) ?(seg_size = 16384) () =
  if mirrors < 1 then invalid_arg "Crashpoint.commit_scenario: at least one mirror";
  if ranges < 1 then invalid_arg "Crashpoint.commit_scenario: at least one range";
  if range_len < 1 || range_len + ((ranges - 1) / 3 * 1024) > seg_size then
    invalid_arg "Crashpoint.commit_scenario: ranges do not fit the segments";
  let make () =
    let clock, cluster, servers, t = make_cluster ~mirrors ~extras:[] () in
    List.iter (fun name -> ignore (seed_segment t name ~size:seg_size)) table_names;
    P.init_remote_db t;
    { clock; cluster; servers; primary = 0; spare = mirrors + 1; ckpt = None; t }
  in
  (* One debit-credit-style transaction: update a slice of each table
     under a single commit, so the sweep cuts both the undo pushes and
     the commit propagation at every packet. *)
  let script env ~checkpoint:_ =
    let txn = P.begin_transaction env.t in
    for j = 0 to ranges - 1 do
      let s = Option.get (P.segment env.t (List.nth table_names (j mod 3))) in
      let off = j / 3 * 1024 in
      P.set_range txn s ~off ~len:range_len;
      P.write env.t s ~off (Bytes.make range_len (Char.chr (Char.code 'A' + j)))
    done;
    P.commit txn
  in
  { label = Printf.sprintf "commit-%dm-%dr" mirrors ranges; make; script }

(* Overlapping, adjacent and duplicate declarations under one commit:
   the redundancy-elision stress scenario.  With [elision] (default)
   the sweep proves first-write-only logging and coalesced propagation
   recover to the same legal images as the naive path ([elision:false])
   at every packet boundary — the two runs' image sets are identical
   because elision never changes what a legal image {e is}, only how
   many packets it takes to reach one. *)
let overlap_scenario ?(mirrors = 1) ?(elision = true) ?(seg_size = 16384) () =
  if mirrors < 1 then invalid_arg "Crashpoint.overlap_scenario: at least one mirror";
  if seg_size < 2048 then invalid_arg "Crashpoint.overlap_scenario: segment too small";
  let make () =
    let config = { small_config with P.redundancy_elision = elision } in
    let clock, cluster, servers, t = make_cluster ~config ~mirrors ~extras:[] () in
    ignore (seed_segment t "db" ~size:seg_size);
    P.init_remote_db t;
    { clock; cluster; servers; primary = 0; spare = mirrors + 1; ckpt = None; t }
  in
  let script env ~checkpoint =
    let seg = Option.get (P.segment env.t "db") in
    let declare txn ~off ~len fill =
      P.set_range txn seg ~off ~len;
      P.write env.t seg ~off (Bytes.make len fill)
    in
    (* A committed warm-up range, so crash points can also land between
       two commits of the same epoch-tagged log. *)
    let txn = P.begin_transaction env.t in
    declare txn ~off:32 ~len:200 'w';
    P.commit txn;
    checkpoint ();
    let txn = P.begin_transaction env.t in
    declare txn ~off:0 ~len:256 'A';
    declare txn ~off:128 ~len:256 'B' (* overlaps the first *);
    declare txn ~off:384 ~len:64 'C' (* adjacent to the second *);
    declare txn ~off:0 ~len:256 'D' (* exact duplicate declaration *);
    declare txn ~off:100 ~len:100 'E' (* fully covered *);
    declare txn ~off:1027 ~len:70 'F' (* disjoint, unaligned *);
    P.commit txn
  in
  {
    label = Printf.sprintf "overlap-%dm-%s" mirrors (if elision then "elided" else "naive");
    make;
    script;
  }

let attach_scenario ?(mirrors = 1) ?(seg_size = 8192) () =
  if mirrors < 1 then invalid_arg "Crashpoint.attach_scenario: at least one mirror";
  let make () =
    let clock, cluster, mirror_servers, t = make_cluster ~mirrors ~extras:[ "joiner" ] () in
    let seg = seed_segment t "db" ~size:seg_size in
    P.init_remote_db t;
    (* A committed transaction, so old undo records exist when the
       joiner's resync is cut short. *)
    let txn = P.begin_transaction t in
    P.set_range txn seg ~off:0 ~len:128;
    P.write t seg ~off:0 (Bytes.make 128 'z');
    P.commit txn;
    let joiner = Netram.Server.create (Cluster.node cluster (mirrors + 1)) in
    (* The joiner comes FIRST in the recovery candidate list: a crash
       during its resync can leave it with a valid magic and an
       epoch tied with the settled mirrors but a torn segment table,
       and recovery must skip such a candidate, not abort on it. *)
    { clock; cluster; servers = joiner :: mirror_servers; primary = 0; spare = mirrors + 2; ckpt = None; t }
  in
  let script env ~checkpoint:_ = P.attach_mirror env.t ~server:(List.hd env.servers) in
  { label = Printf.sprintf "attach-%dm" mirrors; make; script }

let concurrent_scenario ?(mirrors = 1) ?(clients = 3) ?(seg_size = 16384) () =
  if mirrors < 1 then invalid_arg "Crashpoint.concurrent_scenario: at least one mirror";
  if clients < 2 then invalid_arg "Crashpoint.concurrent_scenario: at least two clients";
  let config = { small_config with P.group_commit = clients } in
  let make () =
    let clock, cluster, servers, t = make_cluster ~config ~mirrors ~extras:[] () in
    List.iter (fun name -> ignore (seed_segment t name ~size:seg_size)) table_names;
    P.init_remote_db t;
    { clock; cluster; servers; primary = 0; spare = mirrors + 1; ckpt = None; t }
  in
  (* [clients] transactions from distinct clients flush as one batch
     while one late client stays OPEN across that flush (declared but
     not yet written — its bytes must not travel with its bystanders).
     The late client then commits alone and the script drains, so the
     sweep crosses two group flushes with ≥2 transactions in flight:
     pre, the post-batch checkpoint and post are the only legal
     images, which is exactly per-transaction atomicity under
     concurrency.  Offsets start at 1024 so no line collides with the
     mirror-victim probe's [0,64) range on the first table. *)
  let script env ~checkpoint =
    let seg j = Option.get (P.segment env.t (List.nth table_names (j mod 3))) in
    let range c j = (seg (c + j), 1024 * (c + 1), 192) in
    let payload c = Bytes.make 192 (Char.chr (Char.code 'a' + c)) in
    let txns =
      List.init clients (fun c -> P.begin_transaction ~client:(Printf.sprintf "c%d" c) env.t)
    in
    let late = P.begin_transaction ~client:"late" env.t in
    (* Interleaved declarations: every client's first range, then the
       late client's, then every client's second. *)
    List.iteri
      (fun c txn ->
        let s, off, len = range c 0 in
        P.set_range txn s ~off ~len)
      txns;
    let late_seg, late_off, late_len = (seg 0, 1024 * (clients + 1), 192) in
    P.set_range late late_seg ~off:late_off ~len:late_len;
    List.iteri
      (fun c txn ->
        let s, off, len = range c 1 in
        P.set_range txn s ~off ~len)
      txns;
    List.iteri
      (fun c _ ->
        let s, off, len = range c 0 in
        ignore len;
        P.write env.t s ~off (payload c);
        let s, off, len = range c 1 in
        ignore len;
        P.write env.t s ~off (payload c))
      txns;
    (* The batch flushes on the last commit; [late] rides across it. *)
    List.iter P.commit txns;
    checkpoint ();
    P.write env.t late_seg ~off:late_off (payload clients);
    P.commit late;
    P.flush env.t
  in
  { label = Printf.sprintf "concurrent-%dm-%dc" mirrors clients; make; script }

(* Commits interleaved with every phase of a fuzzy checkpoint — a full
   take, then a second checkpoint cut open across three commits (start,
   a budgeted step, finalize).  The sweep thus crashes its victim at
   every packet of slot zeroing, image shipping, finalize re-ship and
   scrub, the header/magic/directory publication sequence, and the
   commit traffic in between — and the checkpointed engine's recovery
   (the primary sweep passes the surviving target as a restore source)
   must hold the same zero-committed-data-loss oracle as the seed
   scenarios.  Commits rotate across the three tables so at any cut
   some segments are restorable from the checkpoint while others must
   come from the repaired mirror. *)
let checkpoint_scenario ?(mirrors = 1) ?(seg_size = 8192) () =
  if mirrors < 1 then invalid_arg "Crashpoint.checkpoint_scenario: at least one mirror";
  if seg_size < 4096 then invalid_arg "Crashpoint.checkpoint_scenario: segment too small";
  let make () =
    let clock, cluster, servers, t = make_cluster ~mirrors ~extras:[ "ckpt" ] () in
    List.iter (fun name -> ignore (seed_segment t name ~size:seg_size)) table_names;
    P.init_remote_db t;
    let ckpt = Netram.Server.create (Cluster.node cluster (mirrors + 1)) in
    P.Checkpoint.set_ram_target t ~server:ckpt;
    { clock; cluster; servers; primary = 0; spare = mirrors + 2; ckpt = Some ckpt; t }
  in
  let script env ~checkpoint =
    (* Checkpoint operations degrade, commits do not: a dead target
       surfaces as Target_lost (swallowed here) and later phases of the
       same checkpoint are skipped — the guards make the script total
       for the target-victim sweep. *)
    let ck f = try f () with P.Checkpoint.Target_lost _ -> () in
    let have () = P.Checkpoint.target_set env.t in
    let inflight () = P.Checkpoint.in_flight env.t in
    let put j fill =
      let seg = Option.get (P.segment env.t (List.nth table_names (j mod 3))) in
      let off = 1024 * ((j / 3) + 1) in
      let txn = P.begin_transaction env.t in
      P.set_range txn seg ~off ~len:192;
      P.write env.t seg ~off (Bytes.make 192 fill);
      P.commit txn
    in
    put 0 'a';
    checkpoint ();
    if have () then ck (fun () -> ignore (P.Checkpoint.take env.t));
    put 1 'b';
    checkpoint ();
    if have () then ck (fun () -> P.Checkpoint.start env.t);
    put 2 'c';
    checkpoint ();
    if inflight () then ck (fun () -> ignore (P.Checkpoint.step env.t ~budget:4096));
    put 3 'd';
    checkpoint ();
    if inflight () then ck (fun () -> ignore (P.Checkpoint.finalize env.t));
    put 4 'e'
  in
  { label = Printf.sprintf "checkpoint-%dm" mirrors; make; script }

(* ------------------------------------------------------------------ *)
(* Shard scenarios: the same sweeps, pointed at one shard of a sharded
   cluster.  The env carries the VICTIM shard's world (its clock,
   cluster, mirrors, spare and engine — the hook and the crash land
   there); the script reaches the rest of the cluster through the
   router captured by [make]. *)

let shard_world = "Crashpoint: shard scenario script ran before make"

(* Seed the three tables on every shard of a fresh 2-shard bed and
   commit one warm-up transaction per shard, so each shard has undo
   history and a published epoch before the swept work starts. *)
let make_shard_bed ~config ~mirrors ~seg_size =
  let bed = Sharding.make_bed ~config ~dram_mb:2 ~mirrors ~shards:2 () in
  for s = 0 to 1 do
    let t = P.Shard.db bed.Sharding.router s in
    List.iter (fun name -> ignore (seed_segment t name ~size:seg_size)) table_names;
    P.init_remote_db t;
    let seg = Option.get (P.segment t "accounts") in
    let txn = P.begin_transaction t in
    P.set_range txn seg ~off:0 ~len:128;
    P.write t seg ~off:0 (Bytes.make 128 (Char.chr (Char.code 'w' + s)));
    P.commit txn
  done;
  (* Group-commit configs staged the warm-ups; land them so the swept
     script starts from a quiesced, fenced cluster. *)
  P.Shard.fence bed.Sharding.router;
  bed

let shard_env bed ~victim =
  let vb = bed.Sharding.shard_beds.(victim) in
  {
    clock = vb.Sharding.sb_clock;
    cluster = vb.Sharding.sb_cluster;
    servers = vb.Sharding.sb_servers;
    primary = 0;
    spare = vb.Sharding.sb_spare;
    ckpt = None;
    t = P.Shard.db bed.Sharding.router victim;
  }

(* A single-shard commit swept at every packet while the OTHER shard
   also commits: the other shard's packets never hit the victim's hook
   (distinct clusters, distinct NICs), so the sweep proves a shard
   primary's death at any packet of its own commit is recovered from
   its own mirrors with no committed byte lost — and without the other
   shard's traffic ever entering the blast radius. *)
let shard_commit_scenario ?(mirrors = 1) ?(seg_size = 8192) () =
  if mirrors < 1 then invalid_arg "Crashpoint.shard_commit_scenario: at least one mirror";
  let world = ref None in
  let victim = 1 in
  let make () =
    let bed = make_shard_bed ~config:small_config ~mirrors ~seg_size in
    world := Some bed.Sharding.router;
    shard_env bed ~victim
  in
  let script env ~checkpoint =
    let sh = match !world with Some sh -> sh | None -> failwith shard_world in
    (* The bystander shard commits first — zero packets on the hook. *)
    let t0 = P.Shard.db sh 0 in
    let seg = Option.get (P.segment t0 "branches") in
    let txn = P.begin_transaction t0 in
    P.set_range txn seg ~off:1024 ~len:192;
    P.write t0 seg ~off:1024 (Bytes.make 192 'o');
    P.commit txn;
    checkpoint ();
    (* The swept transaction: a multi-range commit on the victim. *)
    let txn = P.begin_transaction env.t in
    List.iteri
      (fun j name ->
        let s = Option.get (P.segment env.t name) in
        let off = 1024 * (j + 1) in
        P.set_range txn s ~off ~len:256;
        P.write env.t s ~off (Bytes.make 256 (Char.chr (Char.code 'A' + j))))
      table_names;
    P.commit txn
  in
  { label = Printf.sprintf "shard-commit-%dm" mirrors; make; script }

(* The phase-switch fence swept at every packet: two staged commits on
   the victim ride a group-commit convoy out through [Shard.fence],
   then a queued cross-shard transaction drains through a single-master
   phase (fence, sub-commits on both shards, fence).  Cutting the
   victim's packets anywhere across that sequence must recover to pre,
   the post-convoy checkpoint, or post — convoys and the drained cross
   transaction's victim half are atomic at every boundary. *)
let shard_fence_scenario ?(mirrors = 1) ?(seg_size = 8192) () =
  if mirrors < 1 then invalid_arg "Crashpoint.shard_fence_scenario: at least one mirror";
  let world = ref None in
  let victim = 1 in
  let make () =
    let config = { small_config with P.group_commit = 4 } in
    let bed = make_shard_bed ~config ~mirrors ~seg_size in
    world := Some bed.Sharding.router;
    shard_env bed ~victim
  in
  let script env ~checkpoint =
    let sh = match !world with Some sh -> sh | None -> failwith shard_world in
    let stage name fill =
      let seg = Option.get (P.segment env.t name) in
      let txn = P.begin_transaction env.t in
      P.set_range txn seg ~off:2048 ~len:192;
      P.write env.t seg ~off:2048 (Bytes.make 192 fill);
      P.commit txn (* staged: group commit holds it for the convoy *)
    in
    stage "accounts" 'p';
    stage "branches" 'q';
    P.Shard.fence sh;
    checkpoint ();
    ignore
      (P.Shard.submit_cross sh ~shards:[ 0; 1 ] (fun get ->
           List.iter
             (fun sid ->
               let db, txn = get sid in
               let seg = Option.get (P.segment db "history") in
               P.set_range txn seg ~off:4096 ~len:128;
               P.write db seg ~off:4096 (Bytes.make 128 'x'))
             [ 0; 1 ]));
    ignore (P.Shard.drain sh)
  in
  { label = Printf.sprintf "shard-fence-%dm" mirrors; make; script }

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)

let outcome p = image_label p.image ^ if p.replayed_records > 0 then "+repair" else ""

let csv_header =
  [
    "scenario";
    "victim";
    "point";
    "crashed";
    "outcome";
    "records replayed";
    "bytes replayed";
    "recovery (us)";
    "epoch before";
    "epoch after";
    "mismatches";
  ]

let report_rows (r : report) =
  List.map
    (fun p ->
      [
        r.label;
        victim_label r.victim;
        string_of_int p.index;
        (if p.crashed then "yes" else "no");
        outcome p;
        string_of_int p.replayed_records;
        string_of_int p.replayed_bytes;
        Printf.sprintf "%.2f" p.recovery_us;
        Int64.to_string p.epoch_before;
        Int64.to_string p.epoch_after;
        string_of_int p.mismatches;
      ])
    r.points
