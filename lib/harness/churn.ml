(* Churn experiment: drive a live debit-credit workload while a
   failure/repair process crashes and pauses mirror nodes, and let the
   {!Perseas.Supervisor} heal the replication factor from a spare pool.
   The oracle holds the run to the paper's core promise — no committed
   transaction is ever lost: mirrors scrub clean at quiesce, the factor
   returns to target after every failure, and a recovery performed on a
   fresh workstation after killing the primary reproduces the exact
   committed image. *)

open Sim
module P = Perseas
module Sup = Perseas.Supervisor
module W = Workloads.Debit_credit.Make (Perseas.Engine)

type kind = Pause | Crash

type params = {
  seed : int;
  mirrors : int;  (* initial mirrors = the replication target *)
  spares : int;  (* spare-pool size *)
  duration : Time.t;  (* failure-injection horizon *)
  mtbf : Time.t;  (* mean time between failure injections *)
  outage : Time.t;  (* mean outage before the repair process acts *)
  pause_fraction : float;  (* P(transient pause) vs node crash *)
  policy : Sup.policy;
  checkpoint_interval : Time.t option;
      (* when set, a dedicated node holds a checkpoint target and the
         background checkpointer truncates the logs every interval *)
}

let default_params =
  {
    seed = 42;
    mirrors = 2;
    spares = 2;
    duration = Time.ms 40.0;
    mtbf = Time.ms 1.5;
    outage = Time.us 400.0;
    pause_fraction = 0.5;
    policy = Sup.default_policy;
    checkpoint_interval = None;
  }

type injection = { at : Time.t; node : int; kind : kind }

type window = {
  w_node : int;  (* the loss that opened the window *)
  w_kind : kind option;
  w_start : Time.t;
  w_restored : Time.t;
  w_resyncs : P.resync_report list;  (* the recruitments that closed it *)
}

type report = {
  committed : int;
  outage_retries : int;  (* transactions retried after All_mirrors_lost *)
  injections : injection list;  (* oldest first *)
  nodes_hit : int list;
  windows : window list;
  degraded_time : Time.t;
  run_time : Time.t;
  tps : float;
  incremental_resyncs : int;
  full_resyncs : int;
  incremental_bytes : int;
  full_resync_bytes : int;
  full_copy_bytes : int;  (* what one full copy of the database moves *)
  stats : P.stats;
  factor_restored : bool;
  consistent_under_churn : bool;
  verify_clean : bool;
  committed_data_preserved : bool;
  recovered_consistent : bool;
  supervisor_events : Sup.event list;
}

exception Oracle_violation of string

let kind_label = function Pause -> "pause" | Crash -> "crash"

let check r =
  let fail fmt = Printf.ksprintf (fun m -> raise (Oracle_violation m)) fmt in
  if not r.factor_restored then fail "replication factor not restored at quiesce";
  if not r.consistent_under_churn then fail "TPC-B invariant broken under churn";
  if not r.verify_clean then fail "verify_mirrors found divergent mirrors at quiesce";
  if not r.committed_data_preserved then
    fail "committed data lost: the image recovered after killing the primary differs";
  if not r.recovered_consistent then fail "recovered database violates the TPC-B invariant"

let run ?(params = default_params) ?telemetry ?postmortem ?sink () =
  if params.mirrors < 1 then invalid_arg "Churn.run: at least one mirror";
  if params.spares < 1 then invalid_arg "Churn.run: at least one spare";
  let clock = Clock.create () in
  let pool = params.mirrors + params.spares in
  let observer = pool + 1 in
  let names =
    ("primary" :: List.init params.mirrors (Printf.sprintf "mirror%d"))
    @ List.init params.spares (Printf.sprintf "spare%d")
    @ [ "observer" ]
    (* The checkpoint target rides a node of its own, after the
       observer so every id in the checkpoint-free layout is
       unchanged.  It is never a churn victim (victims are drawn from
       live mirrors only): losing it is Checkpoint's own concern,
       exercised by the Crashpoint Ckpt_target sweep. *)
    @ (if params.checkpoint_interval = None then [] else [ "ckpt" ])
  in
  let specs =
    List.mapi (fun i n -> Cluster.spec ~dram_size:(4 * 1024 * 1024) ~power_supply:i n) names
  in
  let cluster = Cluster.create ~clock specs in
  (* Current server per pool node; a crashed node gets a fresh one on
     restart (the old exports are gone with its DRAM). *)
  let servers = Hashtbl.create 8 in
  for id = 1 to pool do
    Hashtbl.replace servers id (Netram.Server.create (Cluster.node cluster id))
  done;
  let clients =
    List.init params.mirrors (fun i ->
        Netram.Client.create ~cluster ~local:0 ~server:(Hashtbl.find servers (i + 1)))
  in
  let t = P.init_replicated clients in
  (* The flight recorder watches the whole run — workload, failures,
     repairs, the final recovery — through one bounded ring + monitor.
     A pure observer: postmortem-on runs are byte-identical to
     postmortem-off ones. *)
  let forensics = Option.map (fun dir -> (Forensics.create (), dir)) postmortem in
  (* Flight recorder and any caller sink (a live Trace.Tail, say) share
     the stream via a tee; both stay pure observers. *)
  (match Option.to_list sink @ List.map (fun (f, _) -> Forensics.sink f) (Option.to_list forensics) with
  | [] -> ()
  | ss -> P.set_sink t (Trace.Sink.tee ss));
  let db = W.setup t ~params:Workloads.Debit_credit.small_params in
  let ckpt_server =
    Option.map
      (fun _ ->
        let s = Netram.Server.create (Cluster.node cluster (observer + 1)) in
        P.Checkpoint.set_ram_target t ~server:s;
        s)
      params.checkpoint_interval
  in
  let sup =
    Sup.create ~policy:params.policy ~target:params.mirrors
      ~spares:(List.init params.spares (fun i -> Hashtbl.find servers (params.mirrors + 1 + i)))
      t
  in
  let events = Events.create clock in
  (* The checkpointer shares the main queue: its truncations interleave
     with repairs and recruitments, so every incremental resync taken
     after this point leans on the checkpoint summary where the dirty
     log was cut. *)
  Option.iter
    (fun interval ->
      P.Checkpoint.auto t ~events ~interval ~until:params.duration ~budget:(64 * 1024))
    params.checkpoint_interval;
  (* Telemetry rides on its own event queue, pumped passively wherever
     the clock advances.  The main queue's [next_at] drives wake-up
     decisions in [ensure_service] and the quiesce drain; keeping the
     sampler off it means a telemetry-on run takes byte-identical
     scheduling decisions to a telemetry-off run — the observer can
     never perturb the experiment, only watch it. *)
  let tel_events = Events.create clock in
  let server_label id = List.nth names id in
  (match telemetry with
  | None -> ()
  | Some (tel, interval) ->
      P.set_telemetry t tel;
      Sup.set_telemetry sup tel;
      Hashtbl.iter (fun id s -> Netram.Server.set_telemetry s tel ~label:(server_label id)) servers;
      (* Rates go last so they see the refreshed cumulative gauges. *)
      Trace.Timeseries.rate tel ~name:"rate.tps" ~source:"perseas.committed";
      Trace.Timeseries.rate tel ~name:"rate.bytes_per_s" ~source:"nic.bytes";
      Trace.Timeseries.rate tel ~name:"rate.rpc_per_s" ~source:"netram.rpc_ops";
      Trace.Timeseries.sample tel ~at:(Clock.now clock);
      (* Keep sampling through quiesce; 4x the horizon bounds the tail
         so a slow settle can't flood the series. *)
      Events.every tel_events ~interval ~until:(4 * params.duration) (fun at ->
          Trace.Timeseries.sample tel ~at));
  let pump_telemetry () = Events.run_due tel_events in
  let fail_rng = Rng.create params.seed in
  let work_rng = Rng.create (params.seed + 1) in
  let injections = ref [] in
  let repairing = Hashtbl.create 8 in
  let exp_delay mean = Time.ns (max 1 (int_of_float (Rng.exponential fail_rng ~mean:(float_of_int (Time.to_ns mean))))) in
  (* Round-robin over the pool so every node gets killed, restricted to
     nodes currently serving as live mirrors (a pooled spare that dies
     would just pollute the pool with a permanently-dead server). *)
  let rr = ref 0 in
  let pick_victim () =
    let live = P.live_mirrors t in
    let rec go tries =
      if tries > pool then None
      else
        let id = 1 + ((!rr + tries - 1) mod pool) in
        if List.mem id live && not (Hashtbl.mem repairing id) then begin
          rr := id mod pool;
          Some id
        end
        else go (tries + 1)
    in
    go 1
  in
  let schedule_repair node kind =
    Hashtbl.replace repairing node ();
    let delay = exp_delay params.outage in
    match kind with
    | Pause ->
        (* Transient outage: the server process is wedged or partitioned
           but its node — and the exported segments — survive.  The
           returning server is exactly what incremental resync wants. *)
        let s = Hashtbl.find servers node in
        Netram.Server.pause s;
        ignore
          (Events.schedule_after events ~delay (fun () ->
               Hashtbl.remove repairing node;
               Netram.Server.resume s;
               Sup.add_spare sup s))
    | Crash ->
        (* Node crash: DRAM (and every export) is gone; the rebooted
           node offers a cold server, so recruiting it is a full copy. *)
        ignore (Cluster.crash_node cluster node Cluster.Failure.Software_error);
        ignore
          (Events.schedule_after events ~delay (fun () ->
               Hashtbl.remove repairing node;
               Cluster.restart_node cluster node;
               let s = Netram.Server.create (Cluster.node cluster node) in
               Hashtbl.replace servers node s;
               (match telemetry with
               | Some (tel, _) -> Netram.Server.set_telemetry s tel ~label:(server_label node)
               | None -> ());
               Sup.add_spare sup s))
  in
  let rec schedule_injection () =
    ignore
      (Events.schedule_after events ~delay:(exp_delay params.mtbf) (fun () ->
           if Clock.now clock < params.duration then begin
             (match pick_victim () with
             | Some node ->
                 let kind = if Rng.float fail_rng 1.0 < params.pause_fraction then Pause else Crash in
                 injections := { at = Clock.now clock; node; kind } :: !injections;
                 schedule_repair node kind
             | None -> ());
             schedule_injection ()
           end))
  in
  schedule_injection ();
  (* When the last mirror dies mid-transaction the library rolls back
     and raises; service resumes once a repair event returns a spare
     and the supervisor recruits it. *)
  let ensure_service () =
    let guard = ref 0 in
    while P.mirror_count t = 0 do
      incr guard;
      if !guard > 10_000 then failwith "Churn.run: cluster never became serviceable again";
      Sup.tick sup;
      if P.mirror_count t = 0 then begin
        let soonest_retry =
          if Sup.spares sup = [] then None
          else Some (max (Sup.retry_at sup) (Clock.now clock + Time.us 1.0))
        in
        let next =
          match (Events.next_at events, soonest_retry) with
          | Some at, Some retry -> min at retry
          | Some at, None -> at
          | None, Some retry -> retry
          | None, None -> failwith "Churn.run: no mirrors, no spares, no pending repairs"
        in
        Clock.advance_to clock next;
        Events.run_due events;
        pump_telemetry ()
      end
    done
  in
  let committed = ref 0 and outage_retries = ref 0 in
  let t_start = Clock.now clock in
  while Clock.now clock < params.duration do
    Events.run_due events;
    pump_telemetry ();
    Sup.tick sup;
    match W.transaction db work_rng with
    | () -> incr committed
    | exception P.All_mirrors_lost ->
        incr outage_retries;
        ensure_service ()
  done;
  let run_time = Clock.now clock - t_start in
  let tps = float_of_int !committed /. Time.to_s run_time in
  (* Quiesce: stop injecting (the horizon passed), drain every pending
     repair, and let the supervisor finish restoring the factor. *)
  let rec drain () =
    match Events.next_at events with
    | Some at ->
        Clock.advance_to clock at;
        Events.run_due events;
        pump_telemetry ();
        Sup.tick sup;
        drain ()
    | None -> ()
  in
  drain ();
  let settle = ref 0 in
  while Sup.degraded sup && !settle < 1000 do
    incr settle;
    Clock.advance_to clock
      (max (Sup.retry_at sup) (Clock.now clock + params.policy.Sup.probe_interval));
    pump_telemetry ();
    Sup.tick sup
  done;
  pump_telemetry ();
  let factor_restored = not (Sup.degraded sup) in
  let consistent_under_churn = W.consistent db in
  let verify_clean = P.verify_mirrors t = [] in
  let signature tt =
    List.sort compare (List.map (fun s -> (P.segment_name s, P.checksum tt s)) (P.segments tt))
  in
  let pre = signature t in
  let stats = P.stats t in
  (* The availability claim under churn: kill the primary, rebuild the
     database on a workstation that has never seen it, and compare
     against the committed image. *)
  ignore (Cluster.crash_node cluster 0 Cluster.Failure.Software_error);
  let candidate_servers = List.init pool (fun i -> Hashtbl.find servers (i + 1)) in
  let t2 =
    P.recover_replicated ~config:(P.config t)
      ?sink:(Option.map (fun (f, _) -> Forensics.sink f) forensics)
      ?checkpoint:(Option.map (fun s -> P.Ram_source s) ckpt_server)
      ~cluster ~local:observer ~servers:candidate_servers ()
  in
  let committed_data_preserved = signature t2 = pre in
  let db2 =
    {
      db with
      W.engine = t2;
      W.accounts = Option.get (P.segment t2 "accounts");
      W.tellers = Option.get (P.segment t2 "tellers");
      W.branches = Option.get (P.segment t2 "branches");
      W.history = Option.get (P.segment t2 "history");
    }
  in
  let recovered_consistent = W.consistent db2 in
  (* Degraded windows, from the supervisor's event log: a window opens
     when the factor first drops below target and closes with the
     recruitment that restores it. *)
  let sup_events = Sup.events sup in
  let injections = List.rev !injections in
  let kind_for node at =
    List.fold_left
      (fun acc inj -> if inj.node = node && inj.at <= at then Some inj.kind else acc)
      None injections
  in
  let windows =
    let live = ref params.mirrors in
    let open_w = ref None in
    let resyncs = ref [] in
    let acc = ref [] in
    List.iter
      (fun (e : Sup.event) ->
        match e with
        | Sup.Mirror_lost { at; node_id } ->
            if !live = params.mirrors then begin
              open_w := Some (at, node_id);
              resyncs := []
            end;
            live := max 0 (!live - 1)
        | Sup.Recruited { at; report; _ } ->
            live := min params.mirrors (!live + 1);
            resyncs := report :: !resyncs;
            if !live = params.mirrors then
              Option.iter
                (fun (t0, node) ->
                  acc :=
                    {
                      w_node = node;
                      w_kind = kind_for node t0;
                      w_start = t0;
                      w_restored = at;
                      w_resyncs = List.rev !resyncs;
                    }
                    :: !acc;
                  open_w := None)
                !open_w
        | Sup.Attempt_failed _ | Sup.Gave_up _ -> ())
      sup_events;
    List.rev !acc
  in
  let recruits =
    List.filter_map (function Sup.Recruited { report; _ } -> Some report | _ -> None) sup_events
  in
  let incremental = List.filter (fun r -> r.P.mode = P.Incremental) recruits in
  let fulls = List.filter (fun r -> r.P.mode = P.Full) recruits in
  let sum_bytes = List.fold_left (fun a (r : P.resync_report) -> a + r.bytes_copied) 0 in
  let report =
  {
    committed = !committed;
    outage_retries = !outage_retries;
    injections;
    nodes_hit = List.sort_uniq compare (List.map (fun i -> i.node) injections);
    windows;
    degraded_time = List.fold_left (fun a w -> a + (w.w_restored - w.w_start)) 0 windows;
    run_time;
    tps;
    incremental_resyncs = List.length incremental;
    full_resyncs = List.length fulls;
    incremental_bytes = sum_bytes incremental;
    full_resync_bytes = sum_bytes fulls;
    full_copy_bytes = List.fold_left (fun a s -> a + P.segment_size s) 0 (P.segments t);
    stats;
    factor_restored;
    consistent_under_churn;
    verify_clean;
    committed_data_preserved;
    recovered_consistent;
    supervisor_events = sup_events;
  }
  in
  (match forensics with
  | None -> ()
  | Some (f, dir) ->
      let dump cause = ignore (Forensics.dump f ~dir ~cause ~stats ()) in
      (match Forensics.alerts f with
      | a :: _ ->
          let msg =
            Printf.sprintf "protocol monitor alert under churn: %s"
              (Format.asprintf "%a" Trace.Monitor.pp_alert a)
          in
          dump msg;
          raise (Oracle_violation msg)
      | [] -> ());
      (* A failed oracle leaves its evidence behind before re-raising;
         [check] stays idempotent for callers that run it again. *)
      (try check report
       with Oracle_violation msg as e ->
         dump msg;
         raise e));
  report

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)

let csv_header =
  [
    "window";
    "node";
    "failure";
    "start (us)";
    "restored (us)";
    "degraded (us)";
    "resync";
    "bytes copied";
    "full copy (B)";
    "tps under churn";
  ]

let us t = Printf.sprintf "%.2f" (Time.to_us t)

let window_mode w =
  match List.sort_uniq compare (List.map (fun (r : P.resync_report) -> r.P.mode) w.w_resyncs) with
  | [ P.Incremental ] -> "incremental"
  | [ P.Full ] -> "full"
  | [] -> "-"
  | _ -> "mixed"

let report_rows r =
  let window_rows =
    List.mapi
      (fun i w ->
        let bytes =
          List.fold_left (fun a (x : P.resync_report) -> a + x.bytes_copied) 0 w.w_resyncs
        in
        [
          string_of_int (i + 1);
          string_of_int w.w_node;
          (match w.w_kind with Some k -> kind_label k | None -> "?");
          us w.w_start;
          us w.w_restored;
          us (w.w_restored - w.w_start);
          window_mode w;
          string_of_int bytes;
          string_of_int r.full_copy_bytes;
          "";
        ])
      r.windows
  in
  window_rows
  @ [
      [
        "total";
        "-";
        "-";
        "-";
        us r.run_time;
        us r.degraded_time;
        Printf.sprintf "%d incr / %d full" r.incremental_resyncs r.full_resyncs;
        string_of_int (r.incremental_bytes + r.full_resync_bytes);
        string_of_int r.full_copy_bytes;
        Printf.sprintf "%.0f" r.tps;
      ];
    ]
