open Sim

type result = {
  tps : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  elapsed : Time.t;
  iters : int;
  phases : Trace.phase_stat list;
}

let run ~clock ?(sink = Trace.Sink.noop) ?tail ?(finish = fun () -> ()) ~warmup ~iters tx =
  if iters <= 0 then invalid_arg "Measure.run: iters must be positive";
  for i = 0 to warmup - 1 do
    tx i
  done;
  finish ();
  let series = Stats.Series.create () in
  (* Cursor into the sink so the breakdown covers exactly the measured
     window — warmup spans are excluded. *)
  let mark = Trace.Sink.span_count sink in
  let feed_tail = tail <> None && Trace.Sink.enabled sink in
  let t0 = Clock.now clock in
  for i = 0 to iters - 1 do
    let sp_mark = if feed_tail then Trace.Sink.span_count sink else 0 in
    let ev_mark = if feed_tail then Trace.Sink.event_count sink else 0 in
    let s = Clock.now clock in
    tx (warmup + i);
    let lat = Time.to_us (Clock.now clock - s) in
    Stats.Series.add series lat;
    match tail with
    | Some tail when feed_tail ->
        (* Per-transaction window by cursor: spans into the per-phase
           histograms, the whole window into the exemplar reservoir
           when the latency clears the admission bar. *)
        Trace.Tail.observe tail ~latency_us:lat
          ~spans:(Trace.Sink.spans_since sink sp_mark)
          ~events:(Trace.Sink.events_since sink ev_mark)
    | Some tail -> Trace.Tail.observe tail ~latency_us:lat ~spans:[] ~events:[]
    | None -> ()
  done;
  finish ();
  let elapsed = Clock.now clock - t0 in
  let phases =
    if Trace.Sink.enabled sink then Trace.breakdown (Trace.Sink.spans_since sink mark) else []
  in
  {
    tps = float_of_int iters /. Time.to_s elapsed;
    mean_us = Stats.Series.mean series;
    p50_us = Stats.Series.median series;
    p99_us = Stats.Series.percentile series 99.;
    elapsed;
    iters;
    phases;
  }

let pp_result ppf r =
  Format.fprintf ppf "%.0f tps (mean %.2fus, p50 %.2fus, p99 %.2fus over %d txns)" r.tps r.mean_us
    r.p50_us r.p99_us r.iters
