(** The paper's analytic packets/bytes-per-operation equations, run
    online as a trace observer and checked against the NIC's packet
    stream.

    Parameterised by the engine's {!Perseas.config} (mirror traffic is
    per-node so the mirror factor falls out of the per-node check,
    [group_commit] selects slot stride and convoy packing,
    [redundancy_elision] the first-write-only logging and run
    coalescing, [optimized_memcpy] the 64-byte widening) and the NIC's
    {!Sci.Params} line geometry.  The model replays the engine's
    write-set arithmetic from the coordinates the [set_range] spans
    carry, predicts every commit unit's packet cost per node, and
    settles the account the moment that unit's fence packet lands —
    raising a typed {!drift} alert whenever measured and predicted
    packets disagree beyond tolerance (or bytes disagree at all).

    It is deliberately independent of the engine's own dry runs: the
    packetisation and widening arithmetic is re-derived here, never
    read back from [Sci], so an engine bug cannot silently agree with
    itself.

    Predictions are exact for sequential runs; concurrent interference
    (doomed transactions, stale-record re-push, log compaction)
    surfaces as drift — which is the point. *)

type cost = { pkts64 : int; pkts16 : int; bytes : int }

val cost_zero : cost
val cost_add : cost -> cost -> cost

val cost_packets : cost -> int
(** Total packets of both kinds. *)

val pp_cost : Format.formatter -> cost -> unit

type drift = {
  d_unit : string;  (** Commit-unit key: ["t<id>"] (eager) or ["c<n>"] (convoy). *)
  d_node : int;
  d_class : string;
  d_predicted : cost;
  d_measured : cost;
}

val describe : drift -> string

type t

val create :
  ?tolerance_pkts:int ->
  ?tracking:bool ->
  ?on_drift:(drift -> unit) ->
  config:Perseas.config ->
  params:Sci.Params.t ->
  unit ->
  t
(** [tolerance_pkts] (default 0: the model claims exactness) is the
    allowed absolute packet-count gap per (unit, node) before an alert;
    byte mismatches always alert.  Set [tracking] when the engine has a
    checkpoint target attached (segment-epoch column stores join every
    commit unit).  [on_drift] fires synchronously per alert. *)

val sink : t -> Trace.Sink.t
(** An {!Trace.Sink.observer} feeding the model; tee it next to the
    recording ring (attach after setup, and reset the NIC counters at
    the same point if window totals will be compared). *)

val span : t -> Trace.Span.t -> unit
(** Feed one span by hand — the seeded-mutation tests replay corrupted
    streams through these. *)

val event : t -> Trace.Event.t -> unit

val alerts : t -> drift list
(** Oldest first. *)

val drift_count : t -> int

val units_checked : t -> int
(** (unit, node) fences settled so far. *)

val predicted_total : t -> cost
(** Sum of predictions over settled units — with zero drift and no
    unattributed traffic this equals the NIC counter delta over the
    window. *)

val measured_total : t -> cost
val unattributed : t -> cost
(** Traffic carrying no commit-unit key (reads, recovery, checkpoint
    pushes, setup) — assert zero over a steady-state window. *)

val discarded : t -> int
(** Aborted transactions whose pending predictions were dropped. *)

val pending : t -> int
(** Open or staged transactions plus unfenced (unit, node) ledgers —
    zero once every commit unit has fenced. *)

val classes : t -> (string * cost * cost) list
(** Per packet class ([undo]; [data]; [segmeta]; [fence]):
    [(class, predicted, measured)] totals over settled units — the
    model-vs-measured table. *)
