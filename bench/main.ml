(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (see DESIGN.md's experiment index).

   Usage:
     dune exec bench/main.exe                 # all experiments + BENCH_latency.json
     dune exec bench/main.exe -- fig6 table1  # a subset
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --latency    # BENCH_latency.json only
     dune exec bench/main.exe -- --bechamel   # wall-clock micro-benches
     dune exec bench/main.exe -- --all        # engine x workload matrix -> BENCH_summary.json
     dune exec bench/main.exe -- compare --against BENCH_summary.json [--tolerance PCT] [--p99-tolerance PCT]
                                              # re-measure the matrix, exit 1 on regression *)

let list_experiments () =
  print_endline "Available experiments:";
  List.iter
    (fun (name, descr, _) -> Printf.printf "  %-18s %s\n" name descr)
    Harness.Experiments.names

(* Machine-readable latency baseline for future perf PRs: virtual tps
   and per-phase mean latency of the standard mixes on one mirror. *)
let bench_latency ?(path = "BENCH_latency.json") () =
  let entries =
    List.map
      (fun mix ->
        let tail = Trace.Tail.create () in
        let r, _sink =
          Harness.Experiments.traced_run ~tail ~mix ~mirrors:1 ~warmup:200 ~iters:2000 ()
        in
        let phases =
          String.concat ", "
            (List.map
               (fun (p : Trace.phase_stat) -> Printf.sprintf "%S: %.4f" p.phase p.mean_us)
               r.Harness.Measure.phases)
        in
        (* Additive column: per-phase p99 from the live Tail histograms.
           Old baselines without it still parse and gate. *)
        let phase_p99 =
          String.concat ", "
            (List.map
               (fun (name, p) -> Printf.sprintf "%S: %.4f" name p)
               (Trace.Tail.phase_p99s tail))
        in
        Printf.sprintf
          "  %S: { \"tps\": %.1f, \"mean_us\": %.4f, \"p99_us\": %.4f, \"phase_mean_us\": { %s }, \
           \"phase_p99_us\": { %s } }"
          (Harness.Experiments.mix_label mix)
          r.Harness.Measure.tps r.Harness.Measure.mean_us r.Harness.Measure.p99_us phases phase_p99)
      Harness.Experiments.latency_mixes
  in
  let oc = open_out path in
  output_string oc ("{\n" ^ String.concat ",\n" entries ^ "\n}\n");
  close_out oc;
  Printf.printf "wrote %s\n" path

(* The perf-gate matrix: tps / mean / p99 per engine x workload
   (PERSEAS at 1-3 mirrors), written at the repo root where CI commits
   it as the regression baseline. *)
let bench_all ?(path = "BENCH_summary.json") () =
  let entries = Harness.Bench_summary.collect () in
  Harness.Bench_summary.write ~path entries;
  let header = [ "engine"; "workload"; "mirrors"; "tps"; "mean (us)"; "p99 (us)" ] in
  let rows =
    List.map
      (fun (e : Harness.Bench_summary.entry) ->
        [
          e.engine;
          e.workload;
          (if e.mirrors = 0 then "-" else string_of_int e.mirrors);
          Harness.Table.fmt_tps e.tps;
          Harness.Table.fmt_us e.mean_us;
          Harness.Table.fmt_us e.p99_us;
        ])
      entries
  in
  Harness.Table.print ~title:"Benchmark summary (virtual time, deterministic)" ~header rows;
  Printf.printf "wrote %s (%d cells)\n" path (List.length entries)

(* Measure the matrix fresh and judge it against a committed baseline;
   exits 1 on any gate failure so CI can block the merge. *)
let bench_compare ~against ~tolerance_pct ~p99_tolerance_pct =
  let baseline =
    try Harness.Bench_summary.load against
    with e ->
      Printf.eprintf "cannot load baseline %s: %s\n" against (Printexc.to_string e);
      exit 2
  in
  let verdicts, failed =
    Harness.Bench_summary.compare_to_baseline ~tolerance_pct ~p99_tolerance_pct ~baseline
      (Harness.Bench_summary.collect ())
  in
  Harness.Bench_summary.print_verdicts ~tolerance_pct verdicts;
  if failed then begin
    Printf.eprintf
      "bench gate FAILED: debit-credit tps regressed more than %.0f%% or p99 grew more than %.0f%%\n"
      tolerance_pct p99_tolerance_pct;
    exit 1
  end
  else
    Printf.printf "bench gate passed (tps tolerance %.0f%%, p99 tolerance %.0f%%)\n" tolerance_pct
      p99_tolerance_pct

let rec parse_compare_args against tolerance p99_tolerance = function
  | [] -> (against, tolerance, p99_tolerance)
  | "--against" :: path :: rest -> parse_compare_args (Some path) tolerance p99_tolerance rest
  | "--tolerance" :: pct :: rest -> (
      match float_of_string_opt pct with
      | Some p when p >= 0.0 -> parse_compare_args against (Some p) p99_tolerance rest
      | _ ->
          Printf.eprintf "compare: bad --tolerance %S\n" pct;
          exit 2)
  | "--p99-tolerance" :: pct :: rest -> (
      match float_of_string_opt pct with
      | Some p when p >= 0.0 -> parse_compare_args against tolerance (Some p) rest
      | _ ->
          Printf.eprintf "compare: bad --p99-tolerance %S\n" pct;
          exit 2)
  | arg :: _ ->
      Printf.eprintf "compare: unknown argument %S\n" arg;
      exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      Harness.Experiments.all ();
      bench_latency ();
      print_endline "\nAll experiments done; CSVs are under results/."
  | [ "--list" ] -> list_experiments ()
  | [ "--latency" ] -> bench_latency ()
  | [ "--bechamel" ] -> Bechamel_suite.run ()
  | [ "--all" ] -> bench_all ()
  | "compare" :: rest ->
      let against, tolerance, p99_tolerance = parse_compare_args None None None rest in
      let against = Option.value against ~default:"BENCH_summary.json" in
      bench_compare ~against
        ~tolerance_pct:(Option.value tolerance ~default:10.0)
        ~p99_tolerance_pct:(Option.value p99_tolerance ~default:20.0)
  | names ->
      List.iter
        (fun name ->
          match
            List.find_opt (fun (n, _, _) -> n = name) Harness.Experiments.names
          with
          | Some (_, _, run) -> run ()
          | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" name;
              exit 2)
        names
