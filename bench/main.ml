(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (see DESIGN.md's experiment index).

   Usage:
     dune exec bench/main.exe                 # all experiments + BENCH_latency.json
     dune exec bench/main.exe -- fig6 table1  # a subset
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --latency    # BENCH_latency.json only
     dune exec bench/main.exe -- --bechamel   # wall-clock micro-benches *)

let list_experiments () =
  print_endline "Available experiments:";
  List.iter
    (fun (name, descr, _) -> Printf.printf "  %-18s %s\n" name descr)
    Harness.Experiments.names

(* Machine-readable latency baseline for future perf PRs: virtual tps
   and per-phase mean latency of the standard mixes on one mirror. *)
let bench_latency ?(path = "BENCH_latency.json") () =
  let entries =
    List.map
      (fun mix ->
        let r, _sink = Harness.Experiments.traced_run ~mix ~mirrors:1 ~warmup:200 ~iters:2000 in
        let phases =
          String.concat ", "
            (List.map
               (fun (p : Trace.phase_stat) -> Printf.sprintf "%S: %.4f" p.phase p.mean_us)
               r.Harness.Measure.phases)
        in
        Printf.sprintf
          "  %S: { \"tps\": %.1f, \"mean_us\": %.4f, \"p99_us\": %.4f, \"phase_mean_us\": { %s } }"
          (Harness.Experiments.mix_label mix)
          r.Harness.Measure.tps r.Harness.Measure.mean_us r.Harness.Measure.p99_us phases)
      Harness.Experiments.latency_mixes
  in
  let oc = open_out path in
  output_string oc ("{\n" ^ String.concat ",\n" entries ^ "\n}\n");
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      Harness.Experiments.all ();
      bench_latency ();
      print_endline "\nAll experiments done; CSVs are under results/."
  | [ "--list" ] -> list_experiments ()
  | [ "--latency" ] -> bench_latency ()
  | [ "--bechamel" ] -> Bechamel_suite.run ()
  | names ->
      List.iter
        (fun name ->
          match
            List.find_opt (fun (n, _, _) -> n = name) Harness.Experiments.names
          with
          | Some (_, _, run) -> run ()
          | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" name;
              exit 2)
        names
